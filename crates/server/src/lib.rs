//! # irs-server — the network daemon
//!
//! Serves a [`Client`] over TCP using the `irs-wire` protocol: batch
//! queries (`run`/`run_seeded` semantics preserved, including seeded
//! reproducibility), typed mutations routed through the backend's
//! single writer seat, snapshot administration (save / inspect / load,
//! with load atomically swapping the serving backend), and
//! health/stats.
//!
//! ## Threading model
//!
//! One accept thread plus one thread per connection. Each connection
//! thread holds a cheap [`Client`] clone of the serving backend — the
//! same share-the-`Arc` pattern in-process callers use — so reads run
//! concurrently on connection threads and mutations serialize on the
//! engine's writer seat exactly as they do in one process.
//!
//! ## Graceful shutdown
//!
//! Shutdown arrives either programmatically ([`ServerHandle::shutdown`])
//! or over the wire (`Request::Shutdown`, acked **before** draining
//! starts). Either way the flag flips, the accept loop wakes and stops
//! accepting, and every connection thread finishes what it owes: a
//! half-received request is read to completion, dispatched, and its
//! response flushed before the connection closes. Connection read
//! timeouts act as the poll ticks that make this possible — a thread
//! blocked waiting for a client that sends nothing notices the flag
//! within one [`ServerConfig::poll_interval`]. [`ServerHandle::join`]
//! returns only after every connection thread has exited, so an acked
//! mutation is never lost.

#![deny(missing_docs)]

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use irs_catalog::{
    Catalog, CatalogError, CollectionInfo, CollectionSpec, KindSpec, WorkloadHints,
    DEFAULT_COLLECTION,
};
use irs_client::Client;
use irs_core::persist::PersistError;
use irs_core::{ErrorCode, GridEndpoint, WireError};
use irs_engine::IndexKind;
use irs_wire::frame::{write_frame, FrameReader, ReadEvent};
use irs_wire::message::{
    decode_message, encode_message, CollectionSummary, Request, Response, ServerStats,
    SnapshotSummary,
};

/// Tunables for a serving loop. The default suits tests and production
/// alike; the knob exists so tests can tighten drain latency.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Read timeout on every connection — the shutdown-flag poll tick.
    /// Shorter drains faster under idle connections; longer polls less.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Counters the daemon keeps alongside the backend's own stats.
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    requests: AtomicU64,
    queries: AtomicU64,
    mutations: AtomicU64,
    protocol_errors: AtomicU64,
}

/// What the daemon fronts: one anonymous backend (the classic
/// single-tenant daemon) or a whole multi-tenant [`Catalog`].
enum Backing<E: GridEndpoint> {
    /// One backend. Read-locked per request (to clone the cheap
    /// facade), write-locked only by `Load`'s atomic swap.
    Single(RwLock<Client<E>>),
    /// A catalog of named collections. The lock guards only
    /// `LoadCatalog`'s whole-tenancy swap; all per-collection
    /// concurrency lives inside the catalog itself.
    Catalog(RwLock<Catalog<E>>),
}

/// State shared by the accept loop, every connection thread, and the
/// handle.
struct Shared<E: GridEndpoint> {
    backing: Backing<E>,
    /// Flips once; never clears. Connection threads poll it on read
    /// timeouts, the accept loop checks it per accept.
    draining: AtomicBool,
    counters: Counters,
    started: Instant,
    addr: SocketAddr,
    config: ServerConfig,
}

impl<E: GridEndpoint> Shared<E> {
    /// A facade clone of the single-tenant backend, or a typed refusal
    /// on a catalog server (where plain frames route to the `default`
    /// collection instead).
    fn single_client(&self) -> Option<Client<E>> {
        match &self.backing {
            Backing::Single(client) => {
                Some(client.read().unwrap_or_else(|e| e.into_inner()).clone())
            }
            Backing::Catalog(_) => None,
        }
    }

    /// A handle clone of the serving catalog, or the typed
    /// catalog-not-serving refusal on a single-tenant server.
    fn catalog(&self) -> Result<Catalog<E>, WireError> {
        match &self.backing {
            Backing::Catalog(catalog) => {
                Ok(catalog.read().unwrap_or_else(|e| e.into_inner()).clone())
            }
            Backing::Single(_) => Err(WireError::from(&CatalogError::NotServingCatalog)),
        }
    }

    fn stats(&self) -> ServerStats {
        let (kind, shards, len, shard_lens, weighted) = match &self.backing {
            Backing::Single(client) => {
                let c = client.read().unwrap_or_else(|e| e.into_inner()).clone();
                let s = c.stats();
                (
                    s.kind.name().to_string(),
                    s.shards,
                    s.len,
                    s.shard_lens,
                    s.weighted,
                )
            }
            Backing::Catalog(catalog) => {
                // Aggregate view: the "shards" of a catalog server are
                // its collections, reported in name order.
                let infos = catalog.read().unwrap_or_else(|e| e.into_inner()).list();
                (
                    "catalog".to_string(),
                    infos.len(),
                    infos.iter().map(|i| i.len).sum(),
                    infos.iter().map(|i| i.len).collect(),
                    infos.iter().any(|i| i.weighted),
                )
            }
        };
        ServerStats {
            kind,
            endpoint: E::type_name().to_string(),
            shards,
            len,
            shard_lens,
            weighted,
            connections_accepted: self.counters.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.counters.connections_active.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            queries: self.counters.queries.load(Ordering::Relaxed),
            mutations: self.counters.mutations.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            draining: self.draining.load(Ordering::SeqCst),
        }
    }

    /// Flips the drain flag and wakes the accept loop (which may be
    /// blocked in `accept`) with a throwaway self-connection.
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            // First to flip wakes the accept loop; the connection is
            // dropped immediately and never served.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Handle to a running server: its address, a shutdown trigger, and the
/// join point that waits for the drain to complete.
pub struct ServerHandle<E: GridEndpoint> {
    shared: Arc<Shared<E>>,
    accept: Option<JoinHandle<()>>,
}

impl<E: GridEndpoint> ServerHandle<E> {
    /// The address actually bound — with port 0, the ephemeral port the
    /// OS picked.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A facade clone of the serving backend — the same object remote
    /// mutations land in, so callers (tests, embedders) can observe
    /// state directly. After [`ServerHandle::join`] returns, this clone
    /// reflects every mutation the server ever acked.
    ///
    /// # Panics
    ///
    /// On a catalog server (started with [`serve_catalog`]), which has
    /// no single anonymous backend — use [`ServerHandle::catalog`].
    pub fn client(&self) -> Client<E> {
        self.shared
            .single_client()
            // audit: allow(no-panic): documented `# Panics` contract for embedders; never reachable from network input
            .expect("ServerHandle::client on a catalog server; use ServerHandle::catalog")
    }

    /// A handle clone of the serving catalog, or `None` on a
    /// single-tenant server. The clone shares all state with the one
    /// remote requests land in.
    pub fn catalog(&self) -> Option<Catalog<E>> {
        self.shared.catalog().ok()
    }

    /// Whether the server is draining (shutdown requested, connections
    /// finishing their in-flight work).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown: stop accepting, drain every
    /// connection, exit. Idempotent; returns immediately — use
    /// [`ServerHandle::join`] to wait for the drain.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Waits until the accept loop and every connection thread have
    /// exited. Does not itself request shutdown — call
    /// [`ServerHandle::shutdown`] first (or let a wire `Shutdown`
    /// request arrive).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Serves `client` on `addr` with default [`ServerConfig`]. Binds and
/// spawns the accept loop, returning immediately; bind `addr` with port
/// 0 for an OS-assigned ephemeral port (read it back via
/// [`ServerHandle::local_addr`]).
pub fn serve<E: GridEndpoint>(
    client: Client<E>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle<E>> {
    serve_with(client, addr, ServerConfig::default())
}

/// [`serve`] with explicit tunables.
pub fn serve_with<E: GridEndpoint>(
    client: Client<E>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle<E>> {
    serve_backing(Backing::Single(RwLock::new(client)), addr, config)
}

/// Serves a multi-tenant [`Catalog`] on `addr` with default
/// [`ServerConfig`]. Collection-tagged requests (`CreateCollection`,
/// `RunIn`, …) address collections by name; plain single-collection
/// frames still work, routed to the collection named
/// [`DEFAULT_COLLECTION`].
pub fn serve_catalog<E: GridEndpoint>(
    catalog: Catalog<E>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle<E>> {
    serve_catalog_with(catalog, addr, ServerConfig::default())
}

/// [`serve_catalog`] with explicit tunables.
pub fn serve_catalog_with<E: GridEndpoint>(
    catalog: Catalog<E>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle<E>> {
    serve_backing(Backing::Catalog(RwLock::new(catalog)), addr, config)
}

fn serve_backing<E: GridEndpoint>(
    backing: Backing<E>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle<E>> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        backing,
        draining: AtomicBool::new(false),
        counters: Counters::default(),
        started: Instant::now(),
        addr,
        config,
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("irs-server-accept".to_string())
            .spawn(move || accept_loop(listener, shared))?
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
    })
}

/// Accepts until the drain flag flips, then joins every connection
/// thread so the caller's `join` means "all in-flight work is done".
fn accept_loop<E: GridEndpoint>(listener: TcpListener, shared: Arc<Shared<E>>) {
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.draining.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late arrival): close
                    // it unserved and stop accepting.
                    drop(stream);
                    break;
                }
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                let worker = std::thread::Builder::new()
                    .name("irs-server-conn".to_string())
                    .spawn(move || serve_connection(stream, shared));
                match worker {
                    Ok(h) => workers.lock().unwrap_or_else(|e| e.into_inner()).push(h),
                    Err(_) => { /* spawn failed: connection dropped */ }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Listener died (resource exhaustion, socket torn down):
            // drain what we have rather than spin.
            Err(_) => break,
        }
    }
    for h in workers
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
    {
        let _ = h.join();
    }
}

/// What a dispatched request asks the connection loop to do next.
enum Flow {
    /// Keep serving this connection.
    Continue,
    /// The peer asked the whole server to shut down (already acked).
    Drain,
}

/// One connection, start to finish. All protocol errors are answered
/// with a typed error response where the stream still has integrity;
/// after a framing error the stream has lost sync, so the error is sent
/// and the connection closed.
fn serve_connection<E: GridEndpoint>(stream: TcpStream, shared: Arc<Shared<E>>) {
    shared
        .counters
        .connections_active
        .fetch_add(1, Ordering::Relaxed);
    serve_connection_inner(stream, &shared);
    shared
        .counters
        .connections_active
        .fetch_sub(1, Ordering::Relaxed);
}

fn serve_connection_inner<E: GridEndpoint>(mut stream: TcpStream, shared: &Shared<E>) {
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    loop {
        match reader.read_event(&mut stream) {
            Ok(ReadEvent::Frame(payload)) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let (response, flow) = dispatch(&payload, shared);
                if write_frame(&mut stream, &encode_message(&response)).is_err() {
                    return; // peer gone; nothing left to flush
                }
                match flow {
                    Flow::Continue => {
                        // Drain check: the response above was this
                        // connection's in-flight work; if the server is
                        // draining and nothing else is mid-frame, stop.
                        if shared.draining.load(Ordering::SeqCst) && !reader.mid_frame() {
                            return;
                        }
                    }
                    Flow::Drain => {
                        // Ack already flushed; now flip the flag and
                        // close. In-flight work on other connections
                        // drains under the same rules.
                        shared.begin_drain();
                        return;
                    }
                }
            }
            Ok(ReadEvent::Eof) => return,
            Ok(ReadEvent::Timeout { mid_frame }) => {
                // Poll tick. A draining server keeps reading while a
                // request is mid-frame (it will be answered), and
                // closes once the peer owes us nothing.
                if shared.draining.load(Ordering::SeqCst) && !mid_frame {
                    return;
                }
            }
            Err(frame_err) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                // Best-effort typed refusal; the stream has lost sync
                // (or died), so close either way.
                let response = Response::Error(frame_err.to_wire_error());
                let _ = write_frame(&mut stream, &encode_message(&response));
                return;
            }
        }
    }
}

/// Maps a request-decode failure to its wire form: endpoint mismatches
/// keep their typed persist code, unknown tags get
/// [`ErrorCode::UnknownMessage`], everything else is
/// [`ErrorCode::BadMessage`].
fn decode_error_to_wire(e: &PersistError) -> WireError {
    match e {
        PersistError::EndpointMismatch { .. } => WireError::from(e),
        PersistError::Corrupt {
            what: "unknown request tag",
        } => WireError::protocol(ErrorCode::UnknownMessage, e.to_string()),
        other => WireError::protocol(
            ErrorCode::BadMessage,
            format!("undecodable request: {other}"),
        ),
    }
}

/// One collection's wire summary.
fn collection_summary(info: &CollectionInfo) -> CollectionSummary {
    CollectionSummary {
        name: info.name.clone(),
        kind: info.kind.name().to_string(),
        shards: info.shards,
        len: info.len,
        weighted: info.weighted,
        heap_bytes: info.heap_bytes,
        auto: info.auto.is_some(),
    }
}

/// Executes a run batch against a named collection and lifts each
/// per-query failure to wire form; a whole-batch failure (unknown
/// collection) becomes the response error.
fn run_in_catalog<E: GridEndpoint>(
    catalog: &Catalog<E>,
    collection: &str,
    seed: Option<u64>,
    queries: &[irs_engine::Query<E>],
) -> Response {
    let results = match seed {
        Some(seed) => catalog.run_seeded_in(collection, queries, seed),
        None => catalog.run_in(collection, queries),
    };
    match results {
        Ok(results) => Response::Run(
            results
                .into_iter()
                .map(|r| r.map_err(|e| WireError::from(&e)))
                .collect(),
        ),
        Err(e) => Response::Error(WireError::from(&e)),
    }
}

/// Executes a mutation batch against a named collection; whole-batch
/// refusals (unknown collection, budget exhaustion) become the response
/// error, per-mutation failures travel inside the `Apply` vector.
fn apply_in_catalog<E: GridEndpoint>(
    catalog: &Catalog<E>,
    collection: &str,
    muts: &[irs_core::Mutation<E>],
) -> Response {
    match catalog.apply_in(collection, muts) {
        Ok(results) => Response::Apply(
            results
                .into_iter()
                .map(|r| r.map_err(|e| WireError::from(&e)))
                .collect(),
        ),
        Err(e) => Response::Error(WireError::from(&e)),
    }
}

/// Decodes and executes one request. Batch entries fail individually
/// inside `Run`/`Apply` responses; whole-request failures (snapshot
/// errors, catalog refusals, protocol errors) come back as
/// `Response::Error`.
fn dispatch<E: GridEndpoint>(payload: &[u8], shared: &Shared<E>) -> (Response, Flow) {
    let request: Request<E> = match decode_message(payload) {
        Ok(req) => req,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return (Response::Error(decode_error_to_wire(&e)), Flow::Continue);
        }
    };
    match request {
        Request::Health => (Response::Ok, Flow::Continue),
        Request::Stats => (Response::Stats(shared.stats()), Flow::Continue),
        Request::Run { seed, queries } => {
            shared
                .counters
                .queries
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            let response = match &shared.backing {
                Backing::Single(slot) => {
                    let client = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    let results = match seed {
                        Some(seed) => client.run_seeded(&queries, seed),
                        None => client.run(&queries),
                    };
                    Response::Run(
                        results
                            .iter()
                            .map(|r| r.as_ref().map_err(WireError::from).cloned())
                            .collect(),
                    )
                }
                // Back-compat: an untagged batch addresses "default".
                Backing::Catalog(slot) => {
                    let catalog = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    run_in_catalog(&catalog, DEFAULT_COLLECTION, seed, &queries)
                }
            };
            (response, Flow::Continue)
        }
        Request::Apply { muts } => {
            shared
                .counters
                .mutations
                .fetch_add(muts.len() as u64, Ordering::Relaxed);
            let response = match &shared.backing {
                Backing::Single(slot) => {
                    let mut client = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    Response::Apply(
                        client
                            .apply(&muts)
                            .iter()
                            .map(|r| r.as_ref().map_err(WireError::from).cloned())
                            .collect(),
                    )
                }
                Backing::Catalog(slot) => {
                    let catalog = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    apply_in_catalog(&catalog, DEFAULT_COLLECTION, &muts)
                }
            };
            (response, Flow::Continue)
        }
        Request::Save { dir } => {
            let result = match &shared.backing {
                Backing::Single(slot) => {
                    // Clone the facade, then release the read lock —
                    // a long snapshot save must not block `Load`'s
                    // write-locked swap.
                    let client = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    client.save(&dir).map_err(|e| WireError::from(&e))
                }
                // Back-compat: save the default collection in the
                // single-tenant snapshot layout.
                Backing::Catalog(slot) => {
                    let catalog = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    catalog
                        .save_collection_snapshot(DEFAULT_COLLECTION, &dir)
                        .map_err(|e| WireError::from(&e))
                }
            };
            match result {
                Ok(()) => (Response::Ok, Flow::Continue),
                Err(e) => (Response::Error(e), Flow::Continue),
            }
        }
        Request::InspectSnapshot { dir } => match irs_engine::persist::inspect_snapshot(&dir) {
            Ok(info) => (
                Response::Snapshot(SnapshotSummary {
                    format_version: info.format_version,
                    kind: info.manifest.kind,
                    endpoint: info.manifest.endpoint,
                    weighted: info.manifest.weighted,
                    shards: info.manifest.shards,
                    seed: info.manifest.seed,
                    len: info.manifest.len,
                }),
                Flow::Continue,
            ),
            Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
        },
        Request::Load { dir } => match &shared.backing {
            Backing::Single(slot) => match Client::<E>::load(&dir) {
                Ok(fresh) => {
                    *slot.write().unwrap_or_else(|e| e.into_inner()) = fresh;
                    (Response::Ok, Flow::Continue)
                }
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            },
            Backing::Catalog(_) => (
                Response::Error(WireError::from(&CatalogError::InvalidSpec {
                    reason: "this server fronts a catalog; single-collection Load \
                             would discard the other tenants — use LoadCatalog"
                        .to_string(),
                })),
                Flow::Continue,
            ),
        },
        Request::Shutdown => (Response::Ok, Flow::Drain),
        Request::CreateCollection { spec } => {
            let catalog = match shared.catalog() {
                Ok(c) => c,
                Err(e) => return (Response::Error(e), Flow::Continue),
            };
            let kind = match &spec.kind {
                None => KindSpec::Auto(WorkloadHints {
                    update_rate: spec.update_rate,
                    weighted: spec.weighted,
                    expected_extent: spec.expected_extent,
                }),
                Some(name) => match IndexKind::parse(name) {
                    Some(k) => KindSpec::Fixed(k),
                    None => {
                        return (
                            Response::Error(WireError::from(&CatalogError::InvalidSpec {
                                reason: format!("unknown index kind {name:?}"),
                            })),
                            Flow::Continue,
                        )
                    }
                },
            };
            let mut cspec = CollectionSpec::<E>::new(spec.name)
                .kind(kind)
                .shards(spec.shards)
                .seed(spec.seed);
            if spec.weighted {
                cspec = cspec.weights(Vec::new());
            }
            match catalog.create(cspec) {
                Ok(info) => (
                    Response::Collections(vec![collection_summary(&info)]),
                    Flow::Continue,
                ),
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            }
        }
        Request::DropCollection { name } => {
            let catalog = match shared.catalog() {
                Ok(c) => c,
                Err(e) => return (Response::Error(e), Flow::Continue),
            };
            match catalog.drop_collection(&name) {
                Ok(()) => (Response::Ok, Flow::Continue),
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            }
        }
        Request::ListCollections => match shared.catalog() {
            Ok(catalog) => (
                Response::Collections(catalog.list().iter().map(collection_summary).collect()),
                Flow::Continue,
            ),
            Err(e) => (Response::Error(e), Flow::Continue),
        },
        Request::RunIn {
            collection,
            seed,
            queries,
        } => {
            shared
                .counters
                .queries
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            match shared.catalog() {
                Ok(catalog) => (
                    run_in_catalog(&catalog, &collection, seed, &queries),
                    Flow::Continue,
                ),
                Err(e) => (Response::Error(e), Flow::Continue),
            }
        }
        Request::ApplyIn { collection, muts } => {
            shared
                .counters
                .mutations
                .fetch_add(muts.len() as u64, Ordering::Relaxed);
            match shared.catalog() {
                Ok(catalog) => (
                    apply_in_catalog(&catalog, &collection, &muts),
                    Flow::Continue,
                ),
                Err(e) => (Response::Error(e), Flow::Continue),
            }
        }
        Request::SaveCatalog { dir } => match shared.catalog() {
            Ok(catalog) => match catalog.save(&dir) {
                Ok(()) => (Response::Ok, Flow::Continue),
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            },
            Err(e) => (Response::Error(e), Flow::Continue),
        },
        Request::LoadCatalog { dir } => match &shared.backing {
            Backing::Catalog(slot) => match Catalog::<E>::load(&dir) {
                Ok(fresh) => {
                    *slot.write().unwrap_or_else(|e| e.into_inner()) = fresh;
                    (Response::Ok, Flow::Continue)
                }
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            },
            Backing::Single(_) => (
                Response::Error(WireError::from(&CatalogError::NotServingCatalog)),
                Flow::Continue,
            ),
        },
        Request::Reindex { collection, kind } => {
            let catalog = match shared.catalog() {
                Ok(c) => c,
                Err(e) => return (Response::Error(e), Flow::Continue),
            };
            let kind = match IndexKind::parse(&kind) {
                Some(k) => k,
                None => {
                    return (
                        Response::Error(WireError::from(&CatalogError::InvalidSpec {
                            reason: format!("unknown index kind {kind:?}"),
                        })),
                        Flow::Continue,
                    )
                }
            };
            match catalog.reindex(&collection, kind, None) {
                Ok(info) => (
                    Response::Collections(vec![collection_summary(&info)]),
                    Flow::Continue,
                ),
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::Interval;
    use irs_engine::IndexKind;
    use irs_wire::RemoteClient;

    fn demo_client() -> Client<i64> {
        let data: Vec<Interval<i64>> = (0..200)
            .map(|i| Interval::new(i, i + (i % 17) + 1))
            .collect();
        irs_client::Irs::builder()
            .kind(IndexKind::Ait)
            .seed(7)
            .build(&data)
            .expect("build")
    }

    #[test]
    fn serve_query_mutate_shutdown_roundtrip() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        let addr = handle.local_addr();

        let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
        remote.health().expect("health");

        let n = remote.count(Interval::new(0, 1000)).expect("count");
        assert_eq!(n, 200);

        let id = remote.insert(Interval::new(-5, -1)).expect("insert");
        assert_eq!(remote.count(Interval::new(-5, -1)).expect("count"), 1);
        remote.remove(id).expect("remove");
        assert_eq!(remote.count(Interval::new(-5, -1)).expect("count"), 0);

        let stats = remote.stats().expect("stats");
        assert_eq!(stats.kind, "ait");
        assert_eq!(stats.endpoint, "i64");
        assert_eq!(stats.len, 200);
        assert!(stats.requests >= 5);
        assert!(!stats.draining);

        remote.shutdown().expect("shutdown acked");
        handle.join();
    }

    #[test]
    fn seeded_runs_match_the_in_process_engine_exactly() {
        let local = demo_client();
        let handle = serve(local.clone(), ("127.0.0.1", 0)).expect("serve");
        let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");

        let queries: Vec<irs_engine::Query<i64>> = (0..10)
            .map(|i| irs_engine::Query::Sample {
                q: Interval::new(i * 3, i * 3 + 40),
                s: 8,
            })
            .collect();
        let over_wire = remote.run_seeded(&queries, 99).expect("run_seeded");
        let in_process = local.run_seeded(&queries, 99);
        assert_eq!(over_wire.len(), in_process.len());
        for (w, l) in over_wire.iter().zip(&in_process) {
            assert_eq!(w.as_ref().ok(), l.as_ref().ok());
        }

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn wrong_endpoint_is_refused_with_a_typed_code() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        // A u32 client aimed at an i64 server.
        let mut remote = RemoteClient::<u32>::connect(handle.local_addr()).expect("connect");
        let err = remote
            .count(Interval::new(1u32, 5u32))
            .expect_err("must refuse");
        assert_eq!(err.code, ErrorCode::PersistEndpointMismatch);

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn catalog_requests_are_refused_on_single_servers() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");
        let err = remote.list_collections().expect_err("must refuse");
        assert_eq!(err.code, ErrorCode::CatalogNotServing);
        let err = remote
            .load_catalog("/nonexistent")
            .expect_err("must refuse");
        assert_eq!(err.code, ErrorCode::CatalogNotServing);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn catalog_server_routes_plain_frames_to_default() {
        let catalog: Catalog<i64> = Catalog::new();
        let handle = serve_catalog(catalog, ("127.0.0.1", 0)).expect("serve");
        let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");

        // No "default" collection yet: plain frames get the typed 6xx.
        let results = remote.run(&[irs_engine::Query::Count {
            q: Interval::new(0, 10),
        }]);
        assert_eq!(
            results.expect_err("must refuse").code,
            ErrorCode::CatalogUnknownCollection
        );

        let summary = remote
            .create_collection(irs_wire::WireCollectionSpec {
                name: "default".into(),
                kind: Some("ait".into()),
                update_rate: 0.0,
                expected_extent: 0.0,
                weighted: false,
                shards: 1,
                seed: 7,
            })
            .expect("create");
        assert_eq!(summary.kind, "ait");
        assert_eq!(summary.len, 0);

        // Plain (untagged) mutation and query now address "default".
        let id = remote.insert(Interval::new(1, 5)).expect("insert");
        assert_eq!(remote.count(Interval::new(0, 10)).expect("count"), 1);
        remote.remove(id).expect("remove");

        let names: Vec<String> = remote
            .list_collections()
            .expect("ls")
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, ["default"]);

        remote.shutdown().expect("shutdown");
        handle.join();
    }

    #[test]
    fn programmatic_shutdown_drains_idle_connections() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        // An idle connection that never sends a byte must not wedge the
        // drain: the poll tick notices the flag.
        let _idle = TcpStream::connect(handle.local_addr()).expect("connect");
        handle.shutdown();
        handle.join();
    }
}
