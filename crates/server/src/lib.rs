//! # irs-server — the network daemon
//!
//! Serves a [`Client`] over TCP using the `irs-wire` protocol: batch
//! queries (`run`/`run_seeded` semantics preserved, including seeded
//! reproducibility), typed mutations routed through the backend's
//! single writer seat, snapshot administration (save / inspect / load,
//! with load atomically swapping the serving backend), and
//! health/stats.
//!
//! ## Threading model
//!
//! One accept thread plus one thread per connection. Each connection
//! thread holds a cheap [`Client`] clone of the serving backend — the
//! same share-the-`Arc` pattern in-process callers use — so reads run
//! concurrently on connection threads and mutations serialize on the
//! engine's writer seat exactly as they do in one process.
//!
//! ## Graceful shutdown
//!
//! Shutdown arrives either programmatically ([`ServerHandle::shutdown`])
//! or over the wire (`Request::Shutdown`, acked **before** draining
//! starts). Either way the flag flips, the accept loop wakes and stops
//! accepting, and every connection thread finishes what it owes: a
//! half-received request is read to completion, dispatched, and its
//! response flushed before the connection closes. Connection read
//! timeouts act as the poll ticks that make this possible — a thread
//! blocked waiting for a client that sends nothing notices the flag
//! within one [`ServerConfig::poll_interval`]. [`ServerHandle::join`]
//! returns only after every connection thread has exited, so an acked
//! mutation is never lost.

#![deny(missing_docs)]

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use irs_client::Client;
use irs_core::persist::PersistError;
use irs_core::{ErrorCode, GridEndpoint, WireError};
use irs_wire::frame::{write_frame, FrameReader, ReadEvent};
use irs_wire::message::{
    decode_message, encode_message, Request, Response, ServerStats, SnapshotSummary,
};

/// Tunables for a serving loop. The default suits tests and production
/// alike; the knob exists so tests can tighten drain latency.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Read timeout on every connection — the shutdown-flag poll tick.
    /// Shorter drains faster under idle connections; longer polls less.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Counters the daemon keeps alongside the backend's own stats.
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    requests: AtomicU64,
    queries: AtomicU64,
    mutations: AtomicU64,
    protocol_errors: AtomicU64,
}

/// State shared by the accept loop, every connection thread, and the
/// handle.
struct Shared<E: GridEndpoint> {
    /// The serving backend. Read-locked per request (to clone the cheap
    /// facade), write-locked only by `Load`'s atomic swap.
    client: RwLock<Client<E>>,
    /// Flips once; never clears. Connection threads poll it on read
    /// timeouts, the accept loop checks it per accept.
    draining: AtomicBool,
    counters: Counters,
    started: Instant,
    addr: SocketAddr,
    config: ServerConfig,
}

impl<E: GridEndpoint> Shared<E> {
    /// A facade clone of the currently serving backend.
    fn client(&self) -> Client<E> {
        self.client
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn stats(&self) -> ServerStats {
        let c = self.client();
        let s = c.stats();
        ServerStats {
            kind: s.kind.name().to_string(),
            endpoint: s.endpoint.to_string(),
            shards: s.shards,
            len: s.len,
            shard_lens: s.shard_lens,
            weighted: s.weighted,
            connections_accepted: self.counters.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.counters.connections_active.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            queries: self.counters.queries.load(Ordering::Relaxed),
            mutations: self.counters.mutations.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            draining: self.draining.load(Ordering::SeqCst),
        }
    }

    /// Flips the drain flag and wakes the accept loop (which may be
    /// blocked in `accept`) with a throwaway self-connection.
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            // First to flip wakes the accept loop; the connection is
            // dropped immediately and never served.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Handle to a running server: its address, a shutdown trigger, and the
/// join point that waits for the drain to complete.
pub struct ServerHandle<E: GridEndpoint> {
    shared: Arc<Shared<E>>,
    accept: Option<JoinHandle<()>>,
}

impl<E: GridEndpoint> ServerHandle<E> {
    /// The address actually bound — with port 0, the ephemeral port the
    /// OS picked.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A facade clone of the serving backend — the same object remote
    /// mutations land in, so callers (tests, embedders) can observe
    /// state directly. After [`ServerHandle::join`] returns, this clone
    /// reflects every mutation the server ever acked.
    pub fn client(&self) -> Client<E> {
        self.shared.client()
    }

    /// Whether the server is draining (shutdown requested, connections
    /// finishing their in-flight work).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown: stop accepting, drain every
    /// connection, exit. Idempotent; returns immediately — use
    /// [`ServerHandle::join`] to wait for the drain.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Waits until the accept loop and every connection thread have
    /// exited. Does not itself request shutdown — call
    /// [`ServerHandle::shutdown`] first (or let a wire `Shutdown`
    /// request arrive).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Serves `client` on `addr` with default [`ServerConfig`]. Binds and
/// spawns the accept loop, returning immediately; bind `addr` with port
/// 0 for an OS-assigned ephemeral port (read it back via
/// [`ServerHandle::local_addr`]).
pub fn serve<E: GridEndpoint>(
    client: Client<E>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle<E>> {
    serve_with(client, addr, ServerConfig::default())
}

/// [`serve`] with explicit tunables.
pub fn serve_with<E: GridEndpoint>(
    client: Client<E>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle<E>> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        client: RwLock::new(client),
        draining: AtomicBool::new(false),
        counters: Counters::default(),
        started: Instant::now(),
        addr,
        config,
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("irs-server-accept".to_string())
            .spawn(move || accept_loop(listener, shared))?
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
    })
}

/// Accepts until the drain flag flips, then joins every connection
/// thread so the caller's `join` means "all in-flight work is done".
fn accept_loop<E: GridEndpoint>(listener: TcpListener, shared: Arc<Shared<E>>) {
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.draining.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late arrival): close
                    // it unserved and stop accepting.
                    drop(stream);
                    break;
                }
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                let worker = std::thread::Builder::new()
                    .name("irs-server-conn".to_string())
                    .spawn(move || serve_connection(stream, shared));
                match worker {
                    Ok(h) => workers.lock().unwrap_or_else(|e| e.into_inner()).push(h),
                    Err(_) => { /* spawn failed: connection dropped */ }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Listener died (resource exhaustion, socket torn down):
            // drain what we have rather than spin.
            Err(_) => break,
        }
    }
    for h in workers
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
    {
        let _ = h.join();
    }
}

/// What a dispatched request asks the connection loop to do next.
enum Flow {
    /// Keep serving this connection.
    Continue,
    /// The peer asked the whole server to shut down (already acked).
    Drain,
}

/// One connection, start to finish. All protocol errors are answered
/// with a typed error response where the stream still has integrity;
/// after a framing error the stream has lost sync, so the error is sent
/// and the connection closed.
fn serve_connection<E: GridEndpoint>(stream: TcpStream, shared: Arc<Shared<E>>) {
    shared
        .counters
        .connections_active
        .fetch_add(1, Ordering::Relaxed);
    serve_connection_inner(stream, &shared);
    shared
        .counters
        .connections_active
        .fetch_sub(1, Ordering::Relaxed);
}

fn serve_connection_inner<E: GridEndpoint>(mut stream: TcpStream, shared: &Shared<E>) {
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    loop {
        match reader.read_event(&mut stream) {
            Ok(ReadEvent::Frame(payload)) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let (response, flow) = dispatch(&payload, shared);
                if write_frame(&mut stream, &encode_message(&response)).is_err() {
                    return; // peer gone; nothing left to flush
                }
                match flow {
                    Flow::Continue => {
                        // Drain check: the response above was this
                        // connection's in-flight work; if the server is
                        // draining and nothing else is mid-frame, stop.
                        if shared.draining.load(Ordering::SeqCst) && !reader.mid_frame() {
                            return;
                        }
                    }
                    Flow::Drain => {
                        // Ack already flushed; now flip the flag and
                        // close. In-flight work on other connections
                        // drains under the same rules.
                        shared.begin_drain();
                        return;
                    }
                }
            }
            Ok(ReadEvent::Eof) => return,
            Ok(ReadEvent::Timeout { mid_frame }) => {
                // Poll tick. A draining server keeps reading while a
                // request is mid-frame (it will be answered), and
                // closes once the peer owes us nothing.
                if shared.draining.load(Ordering::SeqCst) && !mid_frame {
                    return;
                }
            }
            Err(frame_err) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                // Best-effort typed refusal; the stream has lost sync
                // (or died), so close either way.
                let response = Response::Error(frame_err.to_wire_error());
                let _ = write_frame(&mut stream, &encode_message(&response));
                return;
            }
        }
    }
}

/// Maps a request-decode failure to its wire form: endpoint mismatches
/// keep their typed persist code, unknown tags get
/// [`ErrorCode::UnknownMessage`], everything else is
/// [`ErrorCode::BadMessage`].
fn decode_error_to_wire(e: &PersistError) -> WireError {
    match e {
        PersistError::EndpointMismatch { .. } => WireError::from(e),
        PersistError::Corrupt {
            what: "unknown request tag",
        } => WireError::protocol(ErrorCode::UnknownMessage, e.to_string()),
        other => WireError::protocol(
            ErrorCode::BadMessage,
            format!("undecodable request: {other}"),
        ),
    }
}

/// Decodes and executes one request. Batch entries fail individually
/// inside `Run`/`Apply` responses; whole-request failures (snapshot
/// errors, protocol errors) come back as `Response::Error`.
fn dispatch<E: GridEndpoint>(payload: &[u8], shared: &Shared<E>) -> (Response, Flow) {
    let request: Request<E> = match decode_message(payload) {
        Ok(req) => req,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return (Response::Error(decode_error_to_wire(&e)), Flow::Continue);
        }
    };
    match request {
        Request::Health => (Response::Ok, Flow::Continue),
        Request::Stats => (Response::Stats(shared.stats()), Flow::Continue),
        Request::Run { seed, queries } => {
            shared
                .counters
                .queries
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            let client = shared.client();
            let results = match seed {
                Some(seed) => client.run_seeded(&queries, seed),
                None => client.run(&queries),
            };
            let results = results
                .iter()
                .map(|r| r.as_ref().map_err(WireError::from).cloned())
                .collect();
            (Response::Run(results), Flow::Continue)
        }
        Request::Apply { muts } => {
            shared
                .counters
                .mutations
                .fetch_add(muts.len() as u64, Ordering::Relaxed);
            let mut client = shared.client();
            let results = client
                .apply(&muts)
                .iter()
                .map(|r| r.as_ref().map_err(WireError::from).cloned())
                .collect();
            (Response::Apply(results), Flow::Continue)
        }
        Request::Save { dir } => match shared.client().save(&dir) {
            Ok(()) => (Response::Ok, Flow::Continue),
            Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
        },
        Request::InspectSnapshot { dir } => match irs_engine::persist::inspect_snapshot(&dir) {
            Ok(info) => (
                Response::Snapshot(SnapshotSummary {
                    format_version: info.format_version,
                    kind: info.manifest.kind,
                    endpoint: info.manifest.endpoint,
                    weighted: info.manifest.weighted,
                    shards: info.manifest.shards,
                    seed: info.manifest.seed,
                    len: info.manifest.len,
                }),
                Flow::Continue,
            ),
            Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
        },
        Request::Load { dir } => match Client::<E>::load(&dir) {
            Ok(fresh) => {
                *shared.client.write().unwrap_or_else(|e| e.into_inner()) = fresh;
                (Response::Ok, Flow::Continue)
            }
            Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
        },
        Request::Shutdown => (Response::Ok, Flow::Drain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::Interval;
    use irs_engine::IndexKind;
    use irs_wire::RemoteClient;

    fn demo_client() -> Client<i64> {
        let data: Vec<Interval<i64>> = (0..200)
            .map(|i| Interval::new(i, i + (i % 17) + 1))
            .collect();
        irs_client::Irs::builder()
            .kind(IndexKind::Ait)
            .seed(7)
            .build(&data)
            .expect("build")
    }

    #[test]
    fn serve_query_mutate_shutdown_roundtrip() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        let addr = handle.local_addr();

        let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
        remote.health().expect("health");

        let n = remote.count(Interval::new(0, 1000)).expect("count");
        assert_eq!(n, 200);

        let id = remote.insert(Interval::new(-5, -1)).expect("insert");
        assert_eq!(remote.count(Interval::new(-5, -1)).expect("count"), 1);
        remote.remove(id).expect("remove");
        assert_eq!(remote.count(Interval::new(-5, -1)).expect("count"), 0);

        let stats = remote.stats().expect("stats");
        assert_eq!(stats.kind, "ait");
        assert_eq!(stats.endpoint, "i64");
        assert_eq!(stats.len, 200);
        assert!(stats.requests >= 5);
        assert!(!stats.draining);

        remote.shutdown().expect("shutdown acked");
        handle.join();
    }

    #[test]
    fn seeded_runs_match_the_in_process_engine_exactly() {
        let local = demo_client();
        let handle = serve(local.clone(), ("127.0.0.1", 0)).expect("serve");
        let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");

        let queries: Vec<irs_engine::Query<i64>> = (0..10)
            .map(|i| irs_engine::Query::Sample {
                q: Interval::new(i * 3, i * 3 + 40),
                s: 8,
            })
            .collect();
        let over_wire = remote.run_seeded(&queries, 99).expect("run_seeded");
        let in_process = local.run_seeded(&queries, 99);
        assert_eq!(over_wire.len(), in_process.len());
        for (w, l) in over_wire.iter().zip(&in_process) {
            assert_eq!(w.as_ref().ok(), l.as_ref().ok());
        }

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn wrong_endpoint_is_refused_with_a_typed_code() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        // A u32 client aimed at an i64 server.
        let mut remote = RemoteClient::<u32>::connect(handle.local_addr()).expect("connect");
        let err = remote
            .count(Interval::new(1u32, 5u32))
            .expect_err("must refuse");
        assert_eq!(err.code, ErrorCode::PersistEndpointMismatch);

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn programmatic_shutdown_drains_idle_connections() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        // An idle connection that never sends a byte must not wedge the
        // drain: the poll tick notices the flag.
        let _idle = TcpStream::connect(handle.local_addr()).expect("connect");
        handle.shutdown();
        handle.join();
    }
}
