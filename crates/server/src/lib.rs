//! # irs-server — the network daemon
//!
//! Serves a [`Client`] over TCP using the `irs-wire` protocol: batch
//! queries (`run`/`run_seeded` semantics preserved, including seeded
//! reproducibility), typed mutations routed through the backend's
//! single writer seat, snapshot administration (save / inspect / load,
//! with load atomically swapping the serving backend), and
//! health/stats.
//!
//! ## Threading model
//!
//! One accept thread plus one thread per connection. Each connection
//! thread holds a cheap [`Client`] clone of the serving backend — the
//! same share-the-`Arc` pattern in-process callers use — so reads run
//! concurrently on connection threads and mutations serialize on the
//! engine's writer seat exactly as they do in one process.
//!
//! ## Graceful shutdown
//!
//! Shutdown arrives either programmatically ([`ServerHandle::shutdown`])
//! or over the wire (`Request::Shutdown`, acked **before** draining
//! starts). Either way the flag flips, the accept loop wakes and stops
//! accepting, and every connection thread finishes what it owes: a
//! half-received request is read to completion, dispatched, and its
//! response flushed before the connection closes. Connection read
//! timeouts act as the poll ticks that make this possible — a thread
//! blocked waiting for a client that sends nothing notices the flag
//! within one [`ServerConfig::poll_interval`]. [`ServerHandle::join`]
//! returns only after every connection thread has exited, so an acked
//! mutation is never lost.
//!
//! ## Replication
//!
//! A server started with [`serve_primary`] (or
//! [`serve_primary_catalog`]) keeps a write-ahead mutation log
//! ([`irs_core::wal`]): every acked mutation batch is appended and
//! fsynced **before** it is applied, so a crash after the ack never
//! loses the batch. Such a primary also serves two streaming requests —
//! snapshot-fetch (replica bootstrap) and subscribe-from-seq (live log
//! following). A server started with [`serve_replica`] bootstraps from
//! the primary's snapshot, replays the shipped log tail, then follows
//! live; it refuses client mutations with a typed code until a
//! `Promote` request hands it the writer seat. The protocol and failure
//! model are specified in `DESIGN.md`, "Replication".

#![deny(missing_docs)]

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use irs_catalog::{
    Catalog, CatalogError, CollectionInfo, CollectionSpec, KindSpec, WorkloadHints,
    DEFAULT_COLLECTION,
};
use irs_client::Client;
use irs_core::persist::PersistError;
use irs_core::wal::{self, ReplicationError, WalTailer, WalWriter};
use irs_core::{ErrorCode, GridEndpoint, Mutation, WireError};
use irs_engine::IndexKind;
use irs_wire::frame::{write_frame, FrameReader, ReadEvent};
use irs_wire::message::{
    decode_message, encode_message, CollectionSummary, LogRecordFrame, ReplicationStatus, Request,
    Response, ServerStats, SnapshotChunk, SnapshotSummary,
};
use irs_wire::RemoteClient;

/// Tunables for a serving loop. The default suits tests and production
/// alike; the knob exists so tests can tighten drain latency.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Read timeout on every connection — the shutdown-flag poll tick.
    /// Shorter drains faster under idle connections; longer polls less.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Counters the daemon keeps alongside the backend's own stats.
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    requests: AtomicU64,
    queries: AtomicU64,
    mutations: AtomicU64,
    protocol_errors: AtomicU64,
}

/// What the daemon fronts: one anonymous backend (the classic
/// single-tenant daemon) or a whole multi-tenant [`Catalog`].
enum Backing<E: GridEndpoint> {
    /// One backend. Read-locked per request (to clone the cheap
    /// facade), write-locked only by `Load`'s atomic swap.
    Single(RwLock<Client<E>>),
    /// A catalog of named collections. The lock guards only
    /// `LoadCatalog`'s whole-tenancy swap; all per-collection
    /// concurrency lives inside the catalog itself.
    Catalog(RwLock<Catalog<E>>),
}

/// Replication state on a log-keeping server (`None` on a plain one).
///
/// The `wal` mutex is the replication writer seat: the primary's
/// log-before-apply sequence, the follower's ingest, and snapshot
/// staging all hold it, so the log order *is* the apply order and a
/// staged snapshot names one exact log position. Nothing ever holds
/// another lock while acquiring it.
struct ReplicationState<E> {
    /// `true` while this server follows a primary; flips to `false`
    /// exactly once, on `Promote`.
    following: AtomicBool,
    /// The primary this server bootstrapped from (replicas only).
    primary: Option<String>,
    wal: Mutex<WalWriter<E>>,
    /// Last sequence number both logged and applied — what
    /// `ReplicationStatus` reports.
    last_seq: AtomicU64,
}

impl<E: GridEndpoint> ReplicationState<E> {
    fn primary_seat(wal: WalWriter<E>) -> Self {
        ReplicationState {
            following: AtomicBool::new(false),
            primary: None,
            last_seq: AtomicU64::new(wal.last_seq()),
            wal: Mutex::new(wal),
        }
    }
}

/// State shared by the accept loop, every connection thread, and the
/// handle.
struct Shared<E: GridEndpoint> {
    backing: Backing<E>,
    replication: Option<ReplicationState<E>>,
    /// Flips once; never clears. Connection threads poll it on read
    /// timeouts, the accept loop checks it per accept.
    draining: AtomicBool,
    counters: Counters,
    started: Instant,
    addr: SocketAddr,
    config: ServerConfig,
}

impl<E: GridEndpoint> Shared<E> {
    /// A facade clone of the single-tenant backend, or a typed refusal
    /// on a catalog server (where plain frames route to the `default`
    /// collection instead).
    fn single_client(&self) -> Option<Client<E>> {
        match &self.backing {
            Backing::Single(client) => {
                Some(client.read().unwrap_or_else(|e| e.into_inner()).clone())
            }
            Backing::Catalog(_) => None,
        }
    }

    /// A handle clone of the serving catalog, or the typed
    /// catalog-not-serving refusal on a single-tenant server.
    fn catalog(&self) -> Result<Catalog<E>, WireError> {
        match &self.backing {
            Backing::Catalog(catalog) => {
                Ok(catalog.read().unwrap_or_else(|e| e.into_inner()).clone())
            }
            Backing::Single(_) => Err(WireError::from(&CatalogError::NotServingCatalog)),
        }
    }

    fn stats(&self) -> ServerStats {
        let (kind, shards, len, shard_lens, weighted) = match &self.backing {
            Backing::Single(client) => {
                let c = client.read().unwrap_or_else(|e| e.into_inner()).clone();
                let s = c.stats();
                (
                    s.kind.name().to_string(),
                    s.shards,
                    s.len,
                    s.shard_lens,
                    s.weighted,
                )
            }
            Backing::Catalog(catalog) => {
                // Aggregate view: the "shards" of a catalog server are
                // its collections, reported in name order.
                let infos = catalog.read().unwrap_or_else(|e| e.into_inner()).list();
                (
                    "catalog".to_string(),
                    infos.len(),
                    infos.iter().map(|i| i.len).sum(),
                    infos.iter().map(|i| i.len).collect(),
                    infos.iter().any(|i| i.weighted),
                )
            }
        };
        ServerStats {
            kind,
            endpoint: E::type_name().to_string(),
            shards,
            len,
            shard_lens,
            weighted,
            connections_accepted: self.counters.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.counters.connections_active.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            queries: self.counters.queries.load(Ordering::Relaxed),
            mutations: self.counters.mutations.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            draining: self.draining.load(Ordering::SeqCst),
        }
    }

    /// Flips the drain flag and wakes the accept loop (which may be
    /// blocked in `accept`) with a throwaway self-connection.
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            // First to flip wakes the accept loop; the connection is
            // dropped immediately and never served.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Handle to a running server: its address, a shutdown trigger, and the
/// join point that waits for the drain to complete.
pub struct ServerHandle<E: GridEndpoint> {
    shared: Arc<Shared<E>>,
    accept: Option<JoinHandle<()>>,
    /// The live log-following thread, on a server started with
    /// [`serve_replica`]. Exits on drain or promotion.
    follower: Option<JoinHandle<()>>,
}

impl<E: GridEndpoint> ServerHandle<E> {
    /// The address actually bound — with port 0, the ephemeral port the
    /// OS picked.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A facade clone of the serving backend — the same object remote
    /// mutations land in, so callers (tests, embedders) can observe
    /// state directly. After [`ServerHandle::join`] returns, this clone
    /// reflects every mutation the server ever acked.
    ///
    /// # Panics
    ///
    /// On a catalog server (started with [`serve_catalog`]), which has
    /// no single anonymous backend — use [`ServerHandle::catalog`].
    pub fn client(&self) -> Client<E> {
        self.shared
            .single_client()
            // audit: allow(no-panic): documented `# Panics` contract for embedders; never reachable from network input
            .expect("ServerHandle::client on a catalog server; use ServerHandle::catalog")
    }

    /// A handle clone of the serving catalog, or `None` on a
    /// single-tenant server. The clone shares all state with the one
    /// remote requests land in.
    pub fn catalog(&self) -> Option<Catalog<E>> {
        self.shared.catalog().ok()
    }

    /// Whether the server is draining (shutdown requested, connections
    /// finishing their in-flight work).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown: stop accepting, drain every
    /// connection, exit. Idempotent; returns immediately — use
    /// [`ServerHandle::join`] to wait for the drain.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Waits until the accept loop, every connection thread, and (on a
    /// replica) the follower thread have exited. Does not itself
    /// request shutdown — call [`ServerHandle::shutdown`] first (or let
    /// a wire `Shutdown` request arrive).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.follower.take() {
            let _ = h.join();
        }
    }
}

/// Serves `client` on `addr` with default [`ServerConfig`]. Binds and
/// spawns the accept loop, returning immediately; bind `addr` with port
/// 0 for an OS-assigned ephemeral port (read it back via
/// [`ServerHandle::local_addr`]).
pub fn serve<E: GridEndpoint>(
    client: Client<E>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle<E>> {
    serve_with(client, addr, ServerConfig::default())
}

/// [`serve`] with explicit tunables.
pub fn serve_with<E: GridEndpoint>(
    client: Client<E>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle<E>> {
    serve_backing(Backing::Single(RwLock::new(client)), addr, config, None)
}

/// Serves a multi-tenant [`Catalog`] on `addr` with default
/// [`ServerConfig`]. Collection-tagged requests (`CreateCollection`,
/// `RunIn`, …) address collections by name; plain single-collection
/// frames still work, routed to the collection named
/// [`DEFAULT_COLLECTION`].
pub fn serve_catalog<E: GridEndpoint>(
    catalog: Catalog<E>,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle<E>> {
    serve_catalog_with(catalog, addr, ServerConfig::default())
}

/// [`serve_catalog`] with explicit tunables.
pub fn serve_catalog_with<E: GridEndpoint>(
    catalog: Catalog<E>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle<E>> {
    serve_backing(Backing::Catalog(RwLock::new(catalog)), addr, config, None)
}

/// Serves `client` as a log-keeping replication **primary**: every
/// acked mutation batch is appended to `wal` and fsynced before it is
/// applied, and the server answers `Subscribe` / `FetchSnapshot` so
/// replicas can bootstrap and follow.
///
/// The caller owns log recovery: on restart, recover the log
/// ([`WalWriter::recover`], or `Client::recover` which also re-applies
/// the tail) and hand the recovered writer in — `client` must already
/// reflect every record in the log.
pub fn serve_primary<E: GridEndpoint>(
    client: Client<E>,
    addr: impl ToSocketAddrs,
    wal: WalWriter<E>,
) -> io::Result<ServerHandle<E>> {
    serve_primary_with(client, addr, wal, ServerConfig::default())
}

/// [`serve_primary`] with explicit tunables.
pub fn serve_primary_with<E: GridEndpoint>(
    client: Client<E>,
    addr: impl ToSocketAddrs,
    wal: WalWriter<E>,
    config: ServerConfig,
) -> io::Result<ServerHandle<E>> {
    serve_backing(
        Backing::Single(RwLock::new(client)),
        addr,
        config,
        Some(ReplicationState::primary_seat(wal)),
    )
}

/// [`serve_primary`] fronting a multi-tenant [`Catalog`]. Log records
/// carry the collection name, so a catalog replica replays each batch
/// into the right collection. Catalog DDL (create/drop/reindex) is
/// refused while the log is kept — the mutation log cannot carry it.
pub fn serve_primary_catalog<E: GridEndpoint>(
    catalog: Catalog<E>,
    addr: impl ToSocketAddrs,
    wal: WalWriter<E>,
) -> io::Result<ServerHandle<E>> {
    serve_primary_catalog_with(catalog, addr, wal, ServerConfig::default())
}

/// [`serve_primary_catalog`] with explicit tunables.
pub fn serve_primary_catalog_with<E: GridEndpoint>(
    catalog: Catalog<E>,
    addr: impl ToSocketAddrs,
    wal: WalWriter<E>,
    config: ServerConfig,
) -> io::Result<ServerHandle<E>> {
    serve_backing(
        Backing::Catalog(RwLock::new(catalog)),
        addr,
        config,
        Some(ReplicationState::primary_seat(wal)),
    )
}

/// Boots and serves a **replica** of the primary at `primary` (a
/// `host:port` string): fetches a consistent snapshot into
/// `dir/snapshot`, loads it (single-tenant or catalog, detected from
/// the snapshot's manifest files), starts its own write-ahead log at
/// `dir/wal.irs`, then follows the primary's log live on a background
/// thread. Until promoted, client mutations are refused with
/// [`ErrorCode::ReplicationReadOnly`]; queries are served from the
/// replicated state.
pub fn serve_replica<E: GridEndpoint>(
    addr: impl ToSocketAddrs,
    primary: &str,
    dir: impl AsRef<Path>,
) -> Result<ServerHandle<E>, WireError> {
    serve_replica_with(addr, primary, dir, ServerConfig::default())
}

/// [`serve_replica`] with explicit tunables.
pub fn serve_replica_with<E: GridEndpoint>(
    addr: impl ToSocketAddrs,
    primary: &str,
    dir: impl AsRef<Path>,
    config: ServerConfig,
) -> Result<ServerHandle<E>, WireError> {
    let dir = dir.as_ref();
    let snap_dir = dir.join("snapshot");
    // A previous bootstrap's partial state must not mix into this one.
    if snap_dir.exists() {
        std::fs::remove_dir_all(&snap_dir)
            .map_err(|e| WireError::from(&PersistError::io(&snap_dir, &e)))?;
    }
    let mut boot = RemoteClient::<E>::connect(primary).map_err(|e| {
        WireError::protocol(
            ErrorCode::Internal,
            format!("connect to primary {primary}: {e}"),
        )
    })?;
    let ack = boot.fetch_snapshot(&snap_dir)?;
    drop(boot);
    // The checkpoint sidecar shipped inside the snapshot is the source
    // of truth for where replay resumes; the ack mirrors it.
    let snap_seq = match wal::read_checkpoint(&snap_dir).map_err(|e| WireError::from(&e))? {
        Some(seq) => seq,
        None => ack.last_seq,
    };
    let backing = if snap_dir.join("catalog.irs").exists() {
        let catalog = Catalog::<E>::load(&snap_dir).map_err(|e| WireError::from(&e))?;
        Backing::Catalog(RwLock::new(catalog))
    } else {
        let client = Client::<E>::load(&snap_dir).map_err(|e| WireError::from(&e))?;
        Backing::Single(RwLock::new(client))
    };
    let wal_writer = WalWriter::<E>::create(dir.join("wal.irs"), snap_seq.saturating_add(1))
        .map_err(|e| WireError::from(&e))?;
    let replication = ReplicationState {
        following: AtomicBool::new(true),
        primary: Some(primary.to_string()),
        last_seq: AtomicU64::new(snap_seq),
        wal: Mutex::new(wal_writer),
    };
    let mut handle = serve_backing(backing, addr, config, Some(replication)).map_err(|e| {
        WireError::protocol(ErrorCode::Internal, format!("bind replica listener: {e}"))
    })?;
    let follower = {
        let shared = Arc::clone(&handle.shared);
        let primary = primary.to_string();
        std::thread::Builder::new()
            .name("irs-server-follow".to_string())
            .spawn(move || follower_loop(shared, primary))
            .map_err(|e| {
                WireError::protocol(ErrorCode::Internal, format!("spawn follower thread: {e}"))
            })?
    };
    handle.follower = Some(follower);
    Ok(handle)
}

fn serve_backing<E: GridEndpoint>(
    backing: Backing<E>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
    replication: Option<ReplicationState<E>>,
) -> io::Result<ServerHandle<E>> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        backing,
        replication,
        draining: AtomicBool::new(false),
        counters: Counters::default(),
        started: Instant::now(),
        addr,
        config,
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("irs-server-accept".to_string())
            .spawn(move || accept_loop(listener, shared))?
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        follower: None,
    })
}

/// Accepts until the drain flag flips, then joins every connection
/// thread so the caller's `join` means "all in-flight work is done".
fn accept_loop<E: GridEndpoint>(listener: TcpListener, shared: Arc<Shared<E>>) {
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.draining.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late arrival): close
                    // it unserved and stop accepting.
                    drop(stream);
                    break;
                }
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                let worker = std::thread::Builder::new()
                    .name("irs-server-conn".to_string())
                    .spawn(move || serve_connection(stream, shared));
                match worker {
                    Ok(h) => workers.lock().unwrap_or_else(|e| e.into_inner()).push(h),
                    Err(_) => { /* spawn failed: connection dropped */ }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Listener died (resource exhaustion, socket torn down):
            // drain what we have rather than spin.
            Err(_) => break,
        }
    }
    for h in workers
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
    {
        let _ = h.join();
    }
}

/// What a dispatched request asks the connection loop to do next.
enum Flow {
    /// Keep serving this connection.
    Continue,
    /// The peer asked the whole server to shut down (already acked).
    Drain,
    /// The peer subscribed to the write-ahead log (ack already sent):
    /// push records from `from_seq` until drain or hang-up, then close.
    StreamLog {
        /// First sequence number the subscriber wants.
        from_seq: u64,
    },
    /// Stream the snapshot staged at `dir` as chunk frames plus an `Ok`
    /// terminator (ack already sent), delete the staging directory, and
    /// keep serving.
    SendSnapshot {
        /// The staging directory dispatch saved the snapshot into.
        dir: PathBuf,
    },
}

/// One connection, start to finish. All protocol errors are answered
/// with a typed error response where the stream still has integrity;
/// after a framing error the stream has lost sync, so the error is sent
/// and the connection closed.
fn serve_connection<E: GridEndpoint>(stream: TcpStream, shared: Arc<Shared<E>>) {
    shared
        .counters
        .connections_active
        .fetch_add(1, Ordering::Relaxed);
    serve_connection_inner(stream, &shared);
    shared
        .counters
        .connections_active
        .fetch_sub(1, Ordering::Relaxed);
}

fn serve_connection_inner<E: GridEndpoint>(mut stream: TcpStream, shared: &Shared<E>) {
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    loop {
        match reader.read_event(&mut stream) {
            Ok(ReadEvent::Frame(payload)) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let (response, flow) = dispatch(&payload, shared);
                if write_frame(&mut stream, &encode_message(&response)).is_err() {
                    return; // peer gone; nothing left to flush
                }
                match flow {
                    Flow::Continue => {
                        // Drain check: the response above was this
                        // connection's in-flight work; if the server is
                        // draining and nothing else is mid-frame, stop.
                        if shared.draining.load(Ordering::SeqCst) && !reader.mid_frame() {
                            return;
                        }
                    }
                    Flow::Drain => {
                        // Ack already flushed; now flip the flag and
                        // close. In-flight work on other connections
                        // drains under the same rules.
                        shared.begin_drain();
                        return;
                    }
                    Flow::StreamLog { from_seq } => {
                        // The connection becomes a log push stream; it
                        // never returns to request/response.
                        stream_log(&mut stream, &mut reader, shared, from_seq);
                        return;
                    }
                    Flow::SendSnapshot { dir } => {
                        let sent = stream_snapshot(&mut stream, &dir);
                        let _ = std::fs::remove_dir_all(&dir);
                        if !sent {
                            return; // peer gone mid-stream
                        }
                        if shared.draining.load(Ordering::SeqCst) && !reader.mid_frame() {
                            return;
                        }
                    }
                }
            }
            Ok(ReadEvent::Eof) => return,
            Ok(ReadEvent::Timeout { mid_frame }) => {
                // Poll tick. A draining server keeps reading while a
                // request is mid-frame (it will be answered), and
                // closes once the peer owes us nothing.
                if shared.draining.load(Ordering::SeqCst) && !mid_frame {
                    return;
                }
            }
            Err(frame_err) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                // Best-effort typed refusal; the stream has lost sync
                // (or died), so close either way.
                let response = Response::Error(frame_err.to_wire_error());
                let _ = write_frame(&mut stream, &encode_message(&response));
                return;
            }
        }
    }
}

/// Maps a request-decode failure to its wire form: endpoint mismatches
/// keep their typed persist code, unknown tags get
/// [`ErrorCode::UnknownMessage`], everything else is
/// [`ErrorCode::BadMessage`].
fn decode_error_to_wire(e: &PersistError) -> WireError {
    match e {
        PersistError::EndpointMismatch { .. } => WireError::from(e),
        PersistError::Corrupt {
            what: "unknown request tag",
        } => WireError::protocol(ErrorCode::UnknownMessage, e.to_string()),
        other => WireError::protocol(
            ErrorCode::BadMessage,
            format!("undecodable request: {other}"),
        ),
    }
}

// ----------------------------------------------------------------------
// Replication plumbing
// ----------------------------------------------------------------------

/// Runs a mutation batch under the replication contract: refused with a
/// typed code on a following replica; on a primary the batch is
/// appended to the write-ahead log and **fsynced before `apply` runs**
/// (log-before-apply, fsync-before-ack); on an unreplicated server
/// `apply` runs directly. The wal seat is held across append + apply,
/// so the log order is the apply order.
fn with_wal<E: GridEndpoint>(
    shared: &Shared<E>,
    collection: Option<&str>,
    muts: &[Mutation<E>],
    apply: impl FnOnce() -> Response,
) -> Response {
    let Some(rep) = shared.replication.as_ref() else {
        return apply();
    };
    if rep.following.load(Ordering::SeqCst) {
        return Response::Error(WireError::from(&ReplicationError::ReadOnlyReplica));
    }
    let mut wal = rep.wal.lock().unwrap_or_else(|e| e.into_inner());
    match wal.append(collection, muts) {
        Ok(seq) => {
            let response = apply();
            rep.last_seq.store(seq, Ordering::SeqCst);
            response
        }
        Err(e) => Response::Error(WireError::from(&e)),
    }
}

/// The server's replication role and log position; role `"none"` on a
/// server that keeps no log.
fn replication_status<E: GridEndpoint>(shared: &Shared<E>) -> ReplicationStatus {
    match &shared.replication {
        None => ReplicationStatus {
            role: "none".to_string(),
            last_seq: 0,
            log_start_seq: 0,
            primary: None,
        },
        Some(rep) => {
            let following = rep.following.load(Ordering::SeqCst);
            let log_start_seq = rep
                .wal
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .start_seq();
            ReplicationStatus {
                role: if following { "replica" } else { "primary" }.to_string(),
                last_seq: rep.last_seq.load(Ordering::SeqCst),
                log_start_seq,
                primary: if following { rep.primary.clone() } else { None },
            }
        }
    }
}

/// The typed refusal every replication-only request gets on a server
/// that is not currently a primary.
fn not_primary() -> Response {
    Response::Error(WireError::from(&ReplicationError::NotPrimary))
}

/// The typed refusal catalog DDL gets on a log-keeping server — the
/// mutation log carries mutations only, so create/drop/reindex would
/// silently diverge replicas.
fn refuse_ddl<E: GridEndpoint>(shared: &Shared<E>) -> Option<Response> {
    shared.replication.as_ref().map(|_| {
        Response::Error(WireError::from(&ReplicationError::Unsupported {
            reason: "the mutation log cannot carry catalog DDL; shape the \
                     catalog before enabling replication",
        }))
    })
}

/// Saves the whole backing (full catalog under catalog backing) to
/// `dir` — the snapshot-staging half of `FetchSnapshot`.
fn save_backing_to<E: GridEndpoint>(backing: &Backing<E>, dir: &Path) -> Result<(), WireError> {
    match backing {
        Backing::Single(slot) => {
            let client = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
            client.save(dir).map_err(|e| WireError::from(&e))
        }
        Backing::Catalog(slot) => {
            let catalog = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
            catalog.save(dir).map_err(|e| WireError::from(&e))
        }
    }
}

/// Monotonic tag so concurrent `FetchSnapshot` requests never share a
/// staging directory.
static SNAPSHOT_STAGE_COUNTER: AtomicU64 = AtomicU64::new(0);

fn snapshot_stage_dir() -> PathBuf {
    let n = SNAPSHOT_STAGE_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("irs-snapshot-stage-{}-{n}", std::process::id()))
}

/// Chunk size for snapshot shipping — comfortably under the frame
/// layer's payload cap with message framing around it.
const SNAPSHOT_CHUNK_BYTES: usize = 1 << 20;

fn collect_snapshot_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, PathBuf)>,
) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_snapshot_files(root, &path, out)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            // Forward-slash relative paths: the client validates and
            // re-joins them under its bootstrap directory.
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Streams every file under `dir` as `SnapshotChunk` frames, then the
/// `Ok` terminator. Returns `false` when the peer is gone (the
/// connection should close).
fn stream_snapshot(stream: &mut TcpStream, dir: &Path) -> bool {
    let mut files = Vec::new();
    if let Err(e) = collect_snapshot_files(dir, dir, &mut files) {
        let err = Response::Error(WireError::from(&PersistError::io(dir, &e)));
        return write_frame(stream, &encode_message(&err)).is_ok();
    }
    files.sort();
    for (rel, path) in files {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                let err = Response::Error(WireError::from(&PersistError::io(&path, &e)));
                return write_frame(stream, &encode_message(&err)).is_ok();
            }
        };
        let total_len = bytes.len() as u64;
        let mut chunks: Vec<&[u8]> = bytes.chunks(SNAPSHOT_CHUNK_BYTES).collect();
        if chunks.is_empty() {
            chunks.push(&[]); // an empty file must still exist on the replica
        }
        let mut offset = 0u64;
        for chunk in chunks {
            let resp = Response::SnapshotChunk(SnapshotChunk {
                path: rel.clone(),
                offset,
                total_len,
                bytes: chunk.to_vec(),
            });
            if write_frame(stream, &encode_message(&resp)).is_err() {
                return false;
            }
            offset = offset.saturating_add(chunk.len() as u64);
        }
    }
    write_frame(stream, &encode_message(&Response::Ok)).is_ok()
}

/// Streams the write-ahead log to a subscribed connection: each
/// complete record becomes one `LogRecord` push frame, in sequence
/// order, as the writer appends them. Ends when the server drains, the
/// log errors, or the peer hangs up — the subscriber never sends again,
/// so any read event other than a timeout ends the stream (and the read
/// timeout doubles as the poll tick).
fn stream_log<E: GridEndpoint>(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    shared: &Shared<E>,
    from_seq: u64,
) {
    let Some(rep) = shared.replication.as_ref() else {
        return; // dispatch never routes here without replication
    };
    let path = {
        let wal = rep.wal.lock().unwrap_or_else(|e| e.into_inner());
        wal.path().to_path_buf()
    };
    let mut tailer = match WalTailer::<E>::open(&path, from_seq) {
        Ok(t) => t,
        Err(e) => {
            let resp = Response::Error(WireError::from(&e));
            let _ = write_frame(stream, &encode_message(&resp));
            return;
        }
    };
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match tailer.poll() {
            Ok(records) => {
                for (seq, payload) in records {
                    let resp = Response::LogRecord(LogRecordFrame { seq, payload });
                    if write_frame(stream, &encode_message(&resp)).is_err() {
                        return;
                    }
                }
            }
            Err(e) => {
                let resp = Response::Error(WireError::from(&e));
                let _ = write_frame(stream, &encode_message(&resp));
                return;
            }
        }
        match reader.read_event(stream) {
            Ok(ReadEvent::Timeout { .. }) => {}
            _ => return,
        }
    }
}

/// The replica's follower thread: subscribe to the primary from the
/// local log's next sequence number, ingest pushed records, reconnect
/// on any stream failure (resubscribing from wherever the local log
/// got to), and exit on drain or promotion.
fn follower_loop<E: GridEndpoint>(shared: Arc<Shared<E>>, primary: String) {
    loop {
        let Some(rep) = shared.replication.as_ref() else {
            return;
        };
        if shared.draining.load(Ordering::SeqCst) || !rep.following.load(Ordering::SeqCst) {
            return;
        }
        let from_seq = rep.wal.lock().unwrap_or_else(|e| e.into_inner()).next_seq();
        let subscribed = RemoteClient::<E>::connect(primary.as_str())
            .ok()
            .and_then(|c| c.subscribe(from_seq).ok());
        let Some(mut stream) = subscribed else {
            // Primary unreachable (dead, or not yet up): retry after a
            // poll tick, still serving reads meanwhile.
            std::thread::sleep(shared.config.poll_interval);
            continue;
        };
        loop {
            if shared.draining.load(Ordering::SeqCst) || !rep.following.load(Ordering::SeqCst) {
                return;
            }
            match stream.poll(shared.config.poll_interval) {
                Ok(Some(frames)) => {
                    let mut resubscribe = false;
                    for frame in frames {
                        if !ingest_frame(&shared, frame) {
                            resubscribe = true;
                            break;
                        }
                    }
                    if resubscribe {
                        break;
                    }
                }
                // EOF (primary drained or died) or a protocol error:
                // drop the stream and reconnect from the local log.
                Ok(None) | Err(_) => break,
            }
        }
    }
}

/// Appends one streamed record to the replica's own log (fsynced) and
/// applies it — the same log-before-apply order the primary used.
/// Returns `false` when the follower should resubscribe (sequence gap,
/// undecodable payload) or stop (promoted mid-stream); records the
/// local log already holds are skipped, never reapplied.
fn ingest_frame<E: GridEndpoint>(shared: &Shared<E>, frame: LogRecordFrame) -> bool {
    let Some(rep) = shared.replication.as_ref() else {
        return false;
    };
    let Ok(record) = wal::decode_record_payload::<E>(&frame.payload) else {
        return false;
    };
    let mut wal_seat = rep.wal.lock().unwrap_or_else(|e| e.into_inner());
    if !rep.following.load(Ordering::SeqCst) {
        return false; // promoted while this batch was in flight
    }
    if record.seq < wal_seat.next_seq() {
        return true; // duplicate after a resubscribe — already ingested
    }
    if record.seq > wal_seat.next_seq()
        || wal_seat
            .append(record.collection.as_deref(), &record.muts)
            .is_err()
    {
        return false;
    }
    shared
        .counters
        .mutations
        .fetch_add(record.muts.len() as u64, Ordering::Relaxed);
    match &shared.backing {
        Backing::Single(slot) => {
            let mut client = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
            // Per-mutation failures replay deterministically; the
            // primary already reported them to its caller.
            let _ = client.apply(&record.muts);
        }
        Backing::Catalog(slot) => {
            let catalog = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
            let name = record.collection.as_deref().unwrap_or(DEFAULT_COLLECTION);
            let _ = catalog.apply_in(name, &record.muts);
        }
    }
    rep.last_seq.store(record.seq, Ordering::SeqCst);
    true
}

/// One collection's wire summary.
fn collection_summary(info: &CollectionInfo) -> CollectionSummary {
    CollectionSummary {
        name: info.name.clone(),
        kind: info.kind.name().to_string(),
        shards: info.shards,
        len: info.len,
        weighted: info.weighted,
        heap_bytes: info.heap_bytes,
        auto: info.auto.is_some(),
    }
}

/// Executes a run batch against a named collection and lifts each
/// per-query failure to wire form; a whole-batch failure (unknown
/// collection) becomes the response error.
fn run_in_catalog<E: GridEndpoint>(
    catalog: &Catalog<E>,
    collection: &str,
    seed: Option<u64>,
    queries: &[irs_engine::Query<E>],
) -> Response {
    let results = match seed {
        Some(seed) => catalog.run_seeded_in(collection, queries, seed),
        None => catalog.run_in(collection, queries),
    };
    match results {
        Ok(results) => Response::Run(
            results
                .into_iter()
                .map(|r| r.map_err(|e| WireError::from(&e)))
                .collect(),
        ),
        Err(e) => Response::Error(WireError::from(&e)),
    }
}

/// Executes a mutation batch against a named collection; whole-batch
/// refusals (unknown collection, budget exhaustion) become the response
/// error, per-mutation failures travel inside the `Apply` vector.
fn apply_in_catalog<E: GridEndpoint>(
    catalog: &Catalog<E>,
    collection: &str,
    muts: &[irs_core::Mutation<E>],
) -> Response {
    match catalog.apply_in(collection, muts) {
        Ok(results) => Response::Apply(
            results
                .into_iter()
                .map(|r| r.map_err(|e| WireError::from(&e)))
                .collect(),
        ),
        Err(e) => Response::Error(WireError::from(&e)),
    }
}

/// Decodes and executes one request. Batch entries fail individually
/// inside `Run`/`Apply` responses; whole-request failures (snapshot
/// errors, catalog refusals, protocol errors) come back as
/// `Response::Error`.
fn dispatch<E: GridEndpoint>(payload: &[u8], shared: &Shared<E>) -> (Response, Flow) {
    let request: Request<E> = match decode_message(payload) {
        Ok(req) => req,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return (Response::Error(decode_error_to_wire(&e)), Flow::Continue);
        }
    };
    match request {
        Request::Health => (Response::Ok, Flow::Continue),
        Request::Stats => (Response::Stats(shared.stats()), Flow::Continue),
        Request::Run { seed, queries } => {
            shared
                .counters
                .queries
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            let response = match &shared.backing {
                Backing::Single(slot) => {
                    let client = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    let results = match seed {
                        Some(seed) => client.run_seeded(&queries, seed),
                        None => client.run(&queries),
                    };
                    Response::Run(
                        results
                            .iter()
                            .map(|r| r.as_ref().map_err(WireError::from).cloned())
                            .collect(),
                    )
                }
                // Back-compat: an untagged batch addresses "default".
                Backing::Catalog(slot) => {
                    let catalog = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    run_in_catalog(&catalog, DEFAULT_COLLECTION, seed, &queries)
                }
            };
            (response, Flow::Continue)
        }
        Request::Apply { muts } => {
            shared
                .counters
                .mutations
                .fetch_add(muts.len() as u64, Ordering::Relaxed);
            let response = match &shared.backing {
                Backing::Single(slot) => with_wal(shared, None, &muts, || {
                    let mut client = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    Response::Apply(
                        client
                            .apply(&muts)
                            .iter()
                            .map(|r| r.as_ref().map_err(WireError::from).cloned())
                            .collect(),
                    )
                }),
                // The untagged batch routes to "default" — logged under
                // that name so a catalog replica replays it there too.
                Backing::Catalog(slot) => with_wal(shared, Some(DEFAULT_COLLECTION), &muts, || {
                    let catalog = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    apply_in_catalog(&catalog, DEFAULT_COLLECTION, &muts)
                }),
            };
            (response, Flow::Continue)
        }
        Request::Save { dir } => {
            // On a log-keeping server the wal seat is held across save
            // + checkpoint, so the snapshot and its sidecar name the
            // same log position (mutations wait; reads do not).
            let wal_guard = shared
                .replication
                .as_ref()
                .map(|rep| rep.wal.lock().unwrap_or_else(|e| e.into_inner()));
            let result = match &shared.backing {
                Backing::Single(slot) => {
                    // Clone the facade, then release the read lock —
                    // a long snapshot save must not block `Load`'s
                    // write-locked swap.
                    let client = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    client.save(&dir).map_err(|e| WireError::from(&e))
                }
                // Back-compat: save the default collection in the
                // single-tenant snapshot layout.
                Backing::Catalog(slot) => {
                    let catalog = slot.read().unwrap_or_else(|e| e.into_inner()).clone();
                    catalog
                        .save_collection_snapshot(DEFAULT_COLLECTION, &dir)
                        .map_err(|e| WireError::from(&e))
                }
            };
            let result = result.and_then(|()| match &shared.replication {
                Some(rep) => {
                    wal::write_checkpoint(Path::new(&dir), rep.last_seq.load(Ordering::SeqCst))
                        .map_err(|e| WireError::from(&e))
                }
                None => Ok(()),
            });
            drop(wal_guard);
            match result {
                Ok(()) => (Response::Ok, Flow::Continue),
                Err(e) => (Response::Error(e), Flow::Continue),
            }
        }
        Request::InspectSnapshot { dir } => match irs_engine::persist::inspect_snapshot(&dir) {
            Ok(info) => (
                Response::Snapshot(SnapshotSummary {
                    format_version: info.format_version,
                    kind: info.manifest.kind,
                    endpoint: info.manifest.endpoint,
                    weighted: info.manifest.weighted,
                    shards: info.manifest.shards,
                    seed: info.manifest.seed,
                    len: info.manifest.len,
                }),
                Flow::Continue,
            ),
            Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
        },
        Request::Load { dir } => {
            if shared.replication.is_some() {
                return (
                    Response::Error(WireError::from(&ReplicationError::Unsupported {
                        reason: "swapping the serving backend underneath a write-ahead \
                                 log would desynchronize it; restart the server on the \
                                 target snapshot instead",
                    })),
                    Flow::Continue,
                );
            }
            match &shared.backing {
                Backing::Single(slot) => match Client::<E>::load(&dir) {
                    Ok(fresh) => {
                        *slot.write().unwrap_or_else(|e| e.into_inner()) = fresh;
                        (Response::Ok, Flow::Continue)
                    }
                    Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
                },
                Backing::Catalog(_) => (
                    Response::Error(WireError::from(&CatalogError::InvalidSpec {
                        reason: "this server fronts a catalog; single-collection Load \
                                 would discard the other tenants — use LoadCatalog"
                            .to_string(),
                    })),
                    Flow::Continue,
                ),
            }
        }
        Request::Shutdown => (Response::Ok, Flow::Drain),
        Request::CreateCollection { spec } => {
            if let Some(refusal) = refuse_ddl(shared) {
                return (refusal, Flow::Continue);
            }
            let catalog = match shared.catalog() {
                Ok(c) => c,
                Err(e) => return (Response::Error(e), Flow::Continue),
            };
            let kind = match &spec.kind {
                None => KindSpec::Auto(WorkloadHints {
                    update_rate: spec.update_rate,
                    weighted: spec.weighted,
                    expected_extent: spec.expected_extent,
                }),
                Some(name) => match IndexKind::parse(name) {
                    Some(k) => KindSpec::Fixed(k),
                    None => {
                        return (
                            Response::Error(WireError::from(&CatalogError::InvalidSpec {
                                reason: format!("unknown index kind {name:?}"),
                            })),
                            Flow::Continue,
                        )
                    }
                },
            };
            let mut cspec = CollectionSpec::<E>::new(spec.name)
                .kind(kind)
                .shards(spec.shards)
                .seed(spec.seed);
            if spec.weighted {
                cspec = cspec.weights(Vec::new());
            }
            match catalog.create(cspec) {
                Ok(info) => (
                    Response::Collections(vec![collection_summary(&info)]),
                    Flow::Continue,
                ),
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            }
        }
        Request::DropCollection { name } => {
            if let Some(refusal) = refuse_ddl(shared) {
                return (refusal, Flow::Continue);
            }
            let catalog = match shared.catalog() {
                Ok(c) => c,
                Err(e) => return (Response::Error(e), Flow::Continue),
            };
            match catalog.drop_collection(&name) {
                Ok(()) => (Response::Ok, Flow::Continue),
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            }
        }
        Request::ListCollections => match shared.catalog() {
            Ok(catalog) => (
                Response::Collections(catalog.list().iter().map(collection_summary).collect()),
                Flow::Continue,
            ),
            Err(e) => (Response::Error(e), Flow::Continue),
        },
        Request::RunIn {
            collection,
            seed,
            queries,
        } => {
            shared
                .counters
                .queries
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            match shared.catalog() {
                Ok(catalog) => (
                    run_in_catalog(&catalog, &collection, seed, &queries),
                    Flow::Continue,
                ),
                Err(e) => (Response::Error(e), Flow::Continue),
            }
        }
        Request::ApplyIn { collection, muts } => {
            shared
                .counters
                .mutations
                .fetch_add(muts.len() as u64, Ordering::Relaxed);
            match shared.catalog() {
                Ok(catalog) => (
                    with_wal(shared, Some(&collection), &muts, || {
                        apply_in_catalog(&catalog, &collection, &muts)
                    }),
                    Flow::Continue,
                ),
                Err(e) => (Response::Error(e), Flow::Continue),
            }
        }
        Request::SaveCatalog { dir } => match shared.catalog() {
            Ok(catalog) => match catalog.save(&dir) {
                Ok(()) => (Response::Ok, Flow::Continue),
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            },
            Err(e) => (Response::Error(e), Flow::Continue),
        },
        Request::LoadCatalog { dir } => {
            if shared.replication.is_some() {
                return (
                    Response::Error(WireError::from(&ReplicationError::Unsupported {
                        reason: "swapping the serving catalog underneath a write-ahead \
                                 log would desynchronize it; restart the server on the \
                                 target snapshot instead",
                    })),
                    Flow::Continue,
                );
            }
            match &shared.backing {
                Backing::Catalog(slot) => match Catalog::<E>::load(&dir) {
                    Ok(fresh) => {
                        *slot.write().unwrap_or_else(|e| e.into_inner()) = fresh;
                        (Response::Ok, Flow::Continue)
                    }
                    Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
                },
                Backing::Single(_) => (
                    Response::Error(WireError::from(&CatalogError::NotServingCatalog)),
                    Flow::Continue,
                ),
            }
        }
        Request::Reindex { collection, kind } => {
            if let Some(refusal) = refuse_ddl(shared) {
                return (refusal, Flow::Continue);
            }
            let catalog = match shared.catalog() {
                Ok(c) => c,
                Err(e) => return (Response::Error(e), Flow::Continue),
            };
            let kind = match IndexKind::parse(&kind) {
                Some(k) => k,
                None => {
                    return (
                        Response::Error(WireError::from(&CatalogError::InvalidSpec {
                            reason: format!("unknown index kind {kind:?}"),
                        })),
                        Flow::Continue,
                    )
                }
            };
            match catalog.reindex(&collection, kind, None) {
                Ok(info) => (
                    Response::Collections(vec![collection_summary(&info)]),
                    Flow::Continue,
                ),
                Err(e) => (Response::Error(WireError::from(&e)), Flow::Continue),
            }
        }
        Request::ReplicationStatus => (
            Response::Replication(replication_status(shared)),
            Flow::Continue,
        ),
        Request::Promote => match &shared.replication {
            // `swap` hands out the writer seat exactly once: a second
            // promote (or one aimed at a primary) is a typed refusal.
            Some(rep) if rep.following.swap(false, Ordering::SeqCst) => (
                Response::Replication(replication_status(shared)),
                Flow::Continue,
            ),
            _ => (
                Response::Error(WireError::from(&ReplicationError::NotReplica)),
                Flow::Continue,
            ),
        },
        Request::Subscribe { from_seq } => match &shared.replication {
            Some(rep) if !rep.following.load(Ordering::SeqCst) => {
                let start_seq = rep
                    .wal
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .start_seq();
                if from_seq < start_seq {
                    return (
                        Response::Error(WireError::from(&ReplicationError::StaleSubscribe {
                            requested: from_seq,
                            start: start_seq,
                        })),
                        Flow::Continue,
                    );
                }
                (
                    Response::Replication(replication_status(shared)),
                    Flow::StreamLog { from_seq },
                )
            }
            _ => (not_primary(), Flow::Continue),
        },
        Request::FetchSnapshot => match &shared.replication {
            Some(rep) if !rep.following.load(Ordering::SeqCst) => {
                let stage = snapshot_stage_dir();
                // Under the wal seat: the staged snapshot and its
                // checkpoint name the same log position.
                let wal_seat = rep.wal.lock().unwrap_or_else(|e| e.into_inner());
                let seq = rep.last_seq.load(Ordering::SeqCst);
                let staged = save_backing_to(&shared.backing, &stage).and_then(|()| {
                    wal::write_checkpoint(&stage, seq).map_err(|e| WireError::from(&e))
                });
                drop(wal_seat);
                match staged {
                    Ok(()) => {
                        let mut status = replication_status(shared);
                        // The position the snapshot captures, which may
                        // trail the live log by now.
                        status.last_seq = seq;
                        (
                            Response::Replication(status),
                            Flow::SendSnapshot { dir: stage },
                        )
                    }
                    Err(e) => {
                        let _ = std::fs::remove_dir_all(&stage);
                        (Response::Error(e), Flow::Continue)
                    }
                }
            }
            _ => (not_primary(), Flow::Continue),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::Interval;
    use irs_engine::IndexKind;
    use irs_wire::RemoteClient;

    fn demo_client() -> Client<i64> {
        let data: Vec<Interval<i64>> = (0..200)
            .map(|i| Interval::new(i, i + (i % 17) + 1))
            .collect();
        irs_client::Irs::builder()
            .kind(IndexKind::Ait)
            .seed(7)
            .build(&data)
            .expect("build")
    }

    #[test]
    fn serve_query_mutate_shutdown_roundtrip() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        let addr = handle.local_addr();

        let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
        remote.health().expect("health");

        let n = remote.count(Interval::new(0, 1000)).expect("count");
        assert_eq!(n, 200);

        let id = remote.insert(Interval::new(-5, -1)).expect("insert");
        assert_eq!(remote.count(Interval::new(-5, -1)).expect("count"), 1);
        remote.remove(id).expect("remove");
        assert_eq!(remote.count(Interval::new(-5, -1)).expect("count"), 0);

        let stats = remote.stats().expect("stats");
        assert_eq!(stats.kind, "ait");
        assert_eq!(stats.endpoint, "i64");
        assert_eq!(stats.len, 200);
        assert!(stats.requests >= 5);
        assert!(!stats.draining);

        remote.shutdown().expect("shutdown acked");
        handle.join();
    }

    #[test]
    fn seeded_runs_match_the_in_process_engine_exactly() {
        let local = demo_client();
        let handle = serve(local.clone(), ("127.0.0.1", 0)).expect("serve");
        let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");

        let queries: Vec<irs_engine::Query<i64>> = (0..10)
            .map(|i| irs_engine::Query::Sample {
                q: Interval::new(i * 3, i * 3 + 40),
                s: 8,
            })
            .collect();
        let over_wire = remote.run_seeded(&queries, 99).expect("run_seeded");
        let in_process = local.run_seeded(&queries, 99);
        assert_eq!(over_wire.len(), in_process.len());
        for (w, l) in over_wire.iter().zip(&in_process) {
            assert_eq!(w.as_ref().ok(), l.as_ref().ok());
        }

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn wrong_endpoint_is_refused_with_a_typed_code() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        // A u32 client aimed at an i64 server.
        let mut remote = RemoteClient::<u32>::connect(handle.local_addr()).expect("connect");
        let err = remote
            .count(Interval::new(1u32, 5u32))
            .expect_err("must refuse");
        assert_eq!(err.code, ErrorCode::PersistEndpointMismatch);

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn catalog_requests_are_refused_on_single_servers() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");
        let err = remote.list_collections().expect_err("must refuse");
        assert_eq!(err.code, ErrorCode::CatalogNotServing);
        let err = remote
            .load_catalog("/nonexistent")
            .expect_err("must refuse");
        assert_eq!(err.code, ErrorCode::CatalogNotServing);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn catalog_server_routes_plain_frames_to_default() {
        let catalog: Catalog<i64> = Catalog::new();
        let handle = serve_catalog(catalog, ("127.0.0.1", 0)).expect("serve");
        let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");

        // No "default" collection yet: plain frames get the typed 6xx.
        let results = remote.run(&[irs_engine::Query::Count {
            q: Interval::new(0, 10),
        }]);
        assert_eq!(
            results.expect_err("must refuse").code,
            ErrorCode::CatalogUnknownCollection
        );

        let summary = remote
            .create_collection(irs_wire::WireCollectionSpec {
                name: "default".into(),
                kind: Some("ait".into()),
                update_rate: 0.0,
                expected_extent: 0.0,
                weighted: false,
                shards: 1,
                seed: 7,
            })
            .expect("create");
        assert_eq!(summary.kind, "ait");
        assert_eq!(summary.len, 0);

        // Plain (untagged) mutation and query now address "default".
        let id = remote.insert(Interval::new(1, 5)).expect("insert");
        assert_eq!(remote.count(Interval::new(0, 10)).expect("count"), 1);
        remote.remove(id).expect("remove");

        let names: Vec<String> = remote
            .list_collections()
            .expect("ls")
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, ["default"]);

        remote.shutdown().expect("shutdown");
        handle.join();
    }

    #[test]
    fn programmatic_shutdown_drains_idle_connections() {
        let handle = serve(demo_client(), ("127.0.0.1", 0)).expect("serve");
        // An idle connection that never sends a byte must not wedge the
        // drain: the poll tick notices the flag.
        let _idle = TcpStream::connect(handle.local_addr()).expect("connect");
        handle.shutdown();
        handle.join();
    }
}
