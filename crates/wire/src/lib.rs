//! # irs-wire — the network protocol of `irs-server`
//!
//! A hand-rolled, length-prefixed, CRC-framed TCP protocol (the
//! workspace is offline — no HTTP framework, no serde) carrying the
//! same typed vocabulary the in-process API speaks: batches of
//! [`Query`]s and [`Mutation`]s in, batches of
//! `Result<QueryOutput, WireError>` / `Result<UpdateOutput, WireError>`
//! out, plus snapshot administration and health/stats. Message bodies
//! are encoded with the workspace's snapshot [`Codec`] — the wire format
//! and the on-disk format share one primitive layer, one length-guarded
//! `Vec` decoder, and one corruption-refusal policy.
//!
//! The three layers, bottom up:
//!
//! - [`frame`] — byte framing: 4-byte magic (protocol version baked
//!   in), `u32` payload length (hard-capped **before** any allocation),
//!   payload, CRC-32. The server reads frames incrementally with
//!   timeout ticks so a graceful shutdown can drain without abandoning
//!   a half-received request.
//! - [`message`] — the typed [`Request`]/[`Response`] vocabulary.
//!   Requests that carry intervals also carry the endpoint scalar's
//!   type name and are refused with a typed error when it does not
//!   match the server's — a `u32` client cannot misread an `i64`
//!   server's replies.
//! - [`client::RemoteClient`] — the blocking client: the remote twin of
//!   `irs-client`'s `Client`, with the same batch (`run`/`run_seeded`,
//!   `apply`) and convenience (`count`/`sample`/`insert`/…) surfaces,
//!   returning [`WireError`]s that carry each failure's stable
//!   [`ErrorCode`].
//!
//! The framing, endpoint table, and error-code table are specified in
//! `DESIGN.md`, "Wire protocol".
//!
//! [`Codec`]: irs_core::Codec
//! [`Query`]: irs_engine::Query
//! [`Mutation`]: irs_core::Mutation
//! [`QueryOutput`]: irs_engine::QueryOutput

#![deny(missing_docs)]

pub mod client;
pub mod frame;
pub mod message;

pub use client::{LogStream, RemoteClient};
pub use frame::{FrameError, FrameReader, ReadEvent, MAX_PAYLOAD, WIRE_MAGIC};
pub use irs_core::{ErrorCode, WireError};
pub use message::{
    CollectionSummary, LogRecordFrame, ReplicationStatus, Request, Response, ServerStats,
    SnapshotChunk, SnapshotSummary, WireCollectionSpec,
};
