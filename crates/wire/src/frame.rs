//! Byte framing: how messages travel over a TCP stream.
//!
//! ```text
//! frame := magic[4] | len u32 LE | payload[len] | crc32(payload) u32 LE
//! ```
//!
//! - `magic` is [`WIRE_MAGIC`] — `b"IRW"` plus the protocol version
//!   byte, so a version bump is detected as a bad frame rather than a
//!   misread message.
//! - `len` is validated against [`MAX_PAYLOAD`] **before any
//!   allocation**: a forged multi-gigabyte length is refused with
//!   [`FrameError::TooLarge`] while only 8 header bytes have been read.
//! - The CRC-32 (same polynomial and implementation as the snapshot
//!   format, [`irs_core::persist::crc32`]) is checked before the payload
//!   reaches any message decoder.
//!
//! Reading is incremental ([`FrameReader`]): the server sets a read
//! timeout on each connection and treats timeout ticks as poll points
//! for its shutdown flag, so frames may arrive in arbitrarily small
//! pieces without ever blocking shutdown indefinitely.

use irs_core::persist::crc32;
use irs_core::{ErrorCode, WireError};
use std::io::{self, Read, Write};

/// First four bytes of every frame: `b"IRW"` + the protocol version.
/// Bumping the protocol version changes the magic, so a peer from a
/// different version fails fast with [`FrameError::BadMagic`].
pub const WIRE_MAGIC: [u8; 4] = *b"IRW\x01";

/// Hard cap on one frame's payload (32 MiB). A frame declaring more is
/// refused before any buffer grows; large workloads split into multiple
/// request frames instead.
pub const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;

/// Frame header size: magic + payload length.
const HEADER: usize = 8;

/// CRC trailer size.
const TRAILER: usize = 4;

/// Why a frame could not be read or written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The operating system refused a stream operation (connection
    /// reset, broken pipe, …). Read timeouts are **not** errors — they
    /// surface as [`ReadEvent::Timeout`].
    Io(io::ErrorKind),
    /// The next four bytes are not [`WIRE_MAGIC`]: the peer speaks a
    /// different protocol (or version), or the stream lost sync.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The frame declares a payload longer than [`MAX_PAYLOAD`].
    TooLarge {
        /// The declared payload length.
        declared: u32,
    },
    /// The payload's CRC-32 does not match the trailer.
    Checksum {
        /// CRC carried in the frame.
        stored: u32,
        /// CRC computed over the payload actually received.
        computed: u32,
    },
    /// The stream closed mid-frame.
    Truncated,
}

impl FrameError {
    /// The corresponding stable wire error, for error responses and for
    /// `RemoteClient`'s return values.
    pub fn to_wire_error(&self) -> WireError {
        let (code, message) = match self {
            FrameError::Io(kind) => (ErrorCode::Internal, format!("stream i/o error: {kind}")),
            FrameError::BadMagic { found } => (
                ErrorCode::BadFrame,
                format!("bad frame magic {found:02x?} (expected {WIRE_MAGIC:02x?})"),
            ),
            FrameError::TooLarge { declared } => (
                ErrorCode::FrameTooLarge,
                format!("frame declares {declared} payload bytes (cap {MAX_PAYLOAD})"),
            ),
            FrameError::Checksum { stored, computed } => (
                ErrorCode::FrameChecksum,
                format!(
                    "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                ),
            ),
            FrameError::Truncated => (
                ErrorCode::FrameTruncated,
                "stream closed mid-frame".to_string(),
            ),
        };
        WireError::protocol(code, message)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_wire_error())
    }
}

impl std::error::Error for FrameError {}

/// Frames `payload` and writes it in one `write_all`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(FrameError::TooLarge {
            declared: payload.len() as u32,
        });
    }
    let mut frame = Vec::with_capacity(HEADER + payload.len() + TRAILER);
    frame.extend_from_slice(&WIRE_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.kind()))
}

/// One step of incremental frame reading.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadEvent {
    /// A complete, CRC-verified payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly **between** frames.
    Eof,
    /// The stream's read timeout elapsed with no new bytes. `mid_frame`
    /// says whether a partial frame is pending (so a draining server
    /// knows whether closing now would abandon a request in flight).
    Timeout {
        /// Whether bytes of an incomplete frame are buffered.
        mid_frame: bool,
    },
}

/// Incremental frame reader: accumulates raw bytes across reads (and
/// across timeout ticks) and yields each complete frame exactly once.
/// Pipelined frames are supported — bytes beyond the current frame stay
/// buffered for the next call.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Whether a partial frame is buffered.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads until one [`ReadEvent`] can be reported: a complete frame,
    /// a clean EOF, or a timeout tick (when `r` has a read timeout
    /// configured). Malformed framing — bad magic, an oversized declared
    /// length, a CRC mismatch, EOF mid-frame — is a typed [`FrameError`];
    /// after any error the stream has lost sync and should be closed.
    pub fn read_event(&mut self, r: &mut impl Read) -> Result<ReadEvent, FrameError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self.try_parse()? {
                return Ok(ReadEvent::Frame(payload));
            }
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ReadEvent::Eof)
                    } else {
                        Err(FrameError::Truncated)
                    };
                }
                // audit: allow(no-index): n <= chunk.len() by the Read contract
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadEvent::Timeout {
                        mid_frame: self.mid_frame(),
                    });
                }
                Err(e) => return Err(FrameError::Io(e.kind())),
            }
        }
    }

    /// Parses one complete frame out of the buffer, if present. Header
    /// checks (magic, length cap) run as soon as 8 bytes are buffered —
    /// before waiting for (or allocating) any payload.
    fn try_parse(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        // Every field is peeled off with `split_first_chunk` / `get`,
        // so the compiler proves each bound and no slice here can
        // panic on a short buffer — short just means "keep reading".
        let Some((magic, after_magic)) = self.buf.split_first_chunk::<4>() else {
            return Ok(None);
        };
        if *magic != WIRE_MAGIC {
            return Err(FrameError::BadMagic { found: *magic });
        }
        let Some((len_bytes, rest)) = after_magic.split_first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(*len_bytes);
        if len > MAX_PAYLOAD {
            return Err(FrameError::TooLarge { declared: len });
        }
        let len = len as usize;
        let Some(payload) = rest.get(..len) else {
            return Ok(None);
        };
        let Some((crc_bytes, _)) = rest.get(len..).and_then(|t| t.split_first_chunk::<4>()) else {
            return Ok(None);
        };
        let stored = u32::from_le_bytes(*crc_bytes);
        let computed = crc32(payload);
        if stored != computed {
            return Err(FrameError::Checksum { stored, computed });
        }
        let payload = payload.to_vec();
        self.buf.drain(..HEADER + len + TRAILER);
        Ok(Some(payload))
    }
}

/// Blocking convenience for clients (no read timeout configured): reads
/// events until a frame or a terminal condition. EOF before a frame is
/// [`FrameError::Truncated`] — a reply was expected.
pub fn read_frame_blocking(
    reader: &mut FrameReader,
    r: &mut impl Read,
) -> Result<Vec<u8>, FrameError> {
    loop {
        match reader.read_event(r)? {
            ReadEvent::Frame(payload) => return Ok(payload),
            ReadEvent::Eof => return Err(FrameError::Truncated),
            // With no timeout configured this cannot recur; with one
            // configured the caller opted into waiting.
            ReadEvent::Timeout { .. } => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frames_roundtrip_including_empty_and_pipelined() {
        let mut bytes = framed(b"hello");
        bytes.extend_from_slice(&framed(b""));
        bytes.extend_from_slice(&framed(&[0xAB; 100_000]));
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(
            reader.read_event(&mut cursor).unwrap(),
            ReadEvent::Frame(b"hello".to_vec())
        );
        assert_eq!(
            reader.read_event(&mut cursor).unwrap(),
            ReadEvent::Frame(Vec::new())
        );
        assert_eq!(
            reader.read_event(&mut cursor).unwrap(),
            ReadEvent::Frame(vec![0xAB; 100_000])
        );
        assert_eq!(reader.read_event(&mut cursor).unwrap(), ReadEvent::Eof);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = framed(b"x");
        bytes[0] = b'G'; // "GRW\x01" — e.g. an HTTP GET aimed at us
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            reader.read_event(&mut cursor),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversized_declared_length_is_refused_from_the_header_alone() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        // No payload at all: the refusal must come from the header.
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(
            reader.read_event(&mut cursor),
            Err(FrameError::TooLarge { declared: u32::MAX })
        );
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_error() {
        let mut bytes = framed(b"payload");
        bytes[HEADER + 2] ^= 0x40;
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            reader.read_event(&mut cursor),
            Err(FrameError::Checksum { .. })
        ));
    }

    #[test]
    fn eof_mid_frame_is_truncated() {
        let bytes = framed(b"payload");
        let cut = bytes.len() - 3;
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        assert_eq!(reader.read_event(&mut cursor), Err(FrameError::Truncated));
    }

    #[test]
    fn dribbled_bytes_assemble_across_calls() {
        let bytes = framed(b"slowly");
        let mut reader = FrameReader::new();
        // Feed one byte at a time through separate cursors; each
        // exhausted cursor reports EOF, which mid-frame would be
        // Truncated — so use a reader that yields WouldBlock instead.
        struct Dribble<'a> {
            bytes: &'a [u8],
            pos: usize,
            calls: usize,
        }
        impl std::io::Read for Dribble<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.calls += 1;
                if self.pos >= self.bytes.len() || self.calls.is_multiple_of(3) {
                    // Exhausted, or a periodic timeout tick mid-frame.
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                buf[0] = self.bytes[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut src = Dribble {
            bytes: &bytes,
            pos: 0,
            calls: 0,
        };
        loop {
            match reader.read_event(&mut src).unwrap() {
                ReadEvent::Frame(p) => {
                    assert_eq!(p, b"slowly");
                    break;
                }
                ReadEvent::Timeout { .. } => continue,
                ReadEvent::Eof => panic!("no frame assembled"),
            }
        }
    }

    #[test]
    fn writer_refuses_oversized_payloads() {
        // Construct the error path without allocating 32 MiB: a slice
        // can't be faked, so just check the boundary arithmetic.
        let payload = vec![0u8; MAX_PAYLOAD as usize + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &payload),
            Err(FrameError::TooLarge { .. })
        ));
        assert!(sink.is_empty(), "nothing may be written before the check");
    }
}
