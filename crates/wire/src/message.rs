//! The typed request/response vocabulary carried inside frames.
//!
//! Every message is one frame payload: a tag byte followed by
//! [`Codec`]-encoded fields. Requests that carry intervals
//! ([`Request::Run`], [`Request::Apply`]) also carry the endpoint
//! scalar's [`Codec::type_name`]; the server decodes with its own
//! endpoint type and refuses a mismatch with the typed
//! [`PersistError::EndpointMismatch`] — exactly the policy snapshots
//! follow, so a `u32` client can never misread an `i64` server.
//!
//! Decoding never trusts the bytes: unknown tags, truncated bodies, and
//! trailing garbage are all typed [`PersistError`]s, which the server
//! maps to stable wire error codes (see `irs_core::wire`).

use irs_core::persist::{Codec, PersistError, Reader};
use irs_core::{GridEndpoint, Mutation, UpdateOutput, WireError};
use irs_engine::{Query, QueryOutput};

/// One request frame, client → server.
#[derive(Clone, Debug, PartialEq)]
pub enum Request<E> {
    /// Liveness probe; answered with [`Response::Ok`] while serving.
    Health,
    /// Engine + server counters; answered with [`Response::Stats`].
    Stats,
    /// A batch of queries, answered with [`Response::Run`] carrying one
    /// result per query in order. `seed: Some(s)` pins the draw stream
    /// (the server's `run_seeded` — identical seed, batch, and engine
    /// state reproduce identical bytes); `None` advances the server's
    /// own stream.
    Run {
        /// Explicit draw-stream seed, or `None` for the server's stream.
        seed: Option<u64>,
        /// The queries, answered in order.
        queries: Vec<Query<E>>,
    },
    /// A batch of typed mutations, applied under the server's writer
    /// seat; answered with [`Response::Apply`] carrying one result per
    /// mutation in order.
    Apply {
        /// The mutations, applied in order.
        muts: Vec<Mutation<E>>,
    },
    /// Saves the serving backend to a snapshot directory **on the
    /// server's filesystem**; answered with [`Response::Ok`].
    Save {
        /// Target directory (created if absent), server-side.
        dir: String,
    },
    /// Reads a snapshot directory's manifest (server-side) without
    /// loading it; answered with [`Response::Snapshot`].
    InspectSnapshot {
        /// The snapshot directory, server-side.
        dir: String,
    },
    /// Replaces the serving backend with one loaded from a snapshot
    /// directory (server-side); answered with [`Response::Ok`]. In-flight
    /// requests on other connections finish against the old backend;
    /// later ones see the new one.
    Load {
        /// The snapshot directory, server-side.
        dir: String,
    },
    /// Asks the server to drain and exit: it stops accepting
    /// connections, lets every in-flight request finish and flush its
    /// response (this one answered with [`Response::Ok`] first), then
    /// shuts down.
    Shutdown,
}

const REQ_HEALTH: u8 = 1;
const REQ_STATS: u8 = 2;
const REQ_RUN: u8 = 3;
const REQ_APPLY: u8 = 4;
const REQ_SAVE: u8 = 5;
const REQ_INSPECT: u8 = 6;
const REQ_LOAD: u8 = 7;
const REQ_SHUTDOWN: u8 = 8;

/// Decodes the endpoint type name stamped into a `Run`/`Apply` body and
/// refuses a mismatch — the wire twin of the snapshot manifest check.
fn check_endpoint<E: GridEndpoint>(r: &mut Reader<'_>) -> Result<(), PersistError> {
    let stored = String::decode(r)?;
    if stored != E::type_name() {
        return Err(PersistError::EndpointMismatch {
            stored,
            expected: E::type_name(),
        });
    }
    Ok(())
}

impl<E: GridEndpoint> Codec for Request<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Request::Health => out.push(REQ_HEALTH),
            Request::Stats => out.push(REQ_STATS),
            Request::Run { seed, queries } => {
                out.push(REQ_RUN);
                E::type_name().to_string().encode_into(out);
                seed.encode_into(out);
                queries.encode_into(out);
            }
            Request::Apply { muts } => {
                out.push(REQ_APPLY);
                E::type_name().to_string().encode_into(out);
                muts.encode_into(out);
            }
            Request::Save { dir } => {
                out.push(REQ_SAVE);
                dir.encode_into(out);
            }
            Request::InspectSnapshot { dir } => {
                out.push(REQ_INSPECT);
                dir.encode_into(out);
            }
            Request::Load { dir } => {
                out.push(REQ_LOAD);
                dir.encode_into(out);
            }
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            REQ_HEALTH => Ok(Request::Health),
            REQ_STATS => Ok(Request::Stats),
            REQ_RUN => {
                check_endpoint::<E>(r)?;
                Ok(Request::Run {
                    seed: Option::decode(r)?,
                    queries: Vec::decode(r)?,
                })
            }
            REQ_APPLY => {
                check_endpoint::<E>(r)?;
                Ok(Request::Apply {
                    muts: Vec::decode(r)?,
                })
            }
            REQ_SAVE => Ok(Request::Save {
                dir: String::decode(r)?,
            }),
            REQ_INSPECT => Ok(Request::InspectSnapshot {
                dir: String::decode(r)?,
            }),
            REQ_LOAD => Ok(Request::Load {
                dir: String::decode(r)?,
            }),
            REQ_SHUTDOWN => Ok(Request::Shutdown),
            _ => Err(PersistError::Corrupt {
                what: "unknown request tag",
            }),
        }
    }
}

/// One response frame, server → client.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Success with no payload (health, save, load, shutdown).
    Ok,
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Answer to [`Request::Run`]: one result per query, in order —
    /// the same `Vec<Result<..>>` shape the in-process `Engine::run`
    /// returns, with errors in wire form.
    Run(Vec<Result<QueryOutput, WireError>>),
    /// Answer to [`Request::Apply`]: one result per mutation, in order.
    Apply(Vec<Result<UpdateOutput, WireError>>),
    /// Answer to [`Request::InspectSnapshot`].
    Snapshot(SnapshotSummary),
    /// The request as a whole failed (protocol error, refused admin
    /// operation, draining server). Per-query/per-mutation failures
    /// travel inside [`Response::Run`]/[`Response::Apply`] instead.
    Error(WireError),
}

const RESP_OK: u8 = 1;
const RESP_STATS: u8 = 2;
const RESP_RUN: u8 = 3;
const RESP_APPLY: u8 = 4;
const RESP_SNAPSHOT: u8 = 5;
const RESP_ERROR: u8 = 6;

impl Codec for Response {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(RESP_OK),
            Response::Stats(stats) => {
                out.push(RESP_STATS);
                stats.encode_into(out);
            }
            Response::Run(results) => {
                out.push(RESP_RUN);
                results.encode_into(out);
            }
            Response::Apply(results) => {
                out.push(RESP_APPLY);
                results.encode_into(out);
            }
            Response::Snapshot(info) => {
                out.push(RESP_SNAPSHOT);
                info.encode_into(out);
            }
            Response::Error(e) => {
                out.push(RESP_ERROR);
                e.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            RESP_OK => Ok(Response::Ok),
            RESP_STATS => Ok(Response::Stats(ServerStats::decode(r)?)),
            RESP_RUN => Ok(Response::Run(Vec::decode(r)?)),
            RESP_APPLY => Ok(Response::Apply(Vec::decode(r)?)),
            RESP_SNAPSHOT => Ok(Response::Snapshot(SnapshotSummary::decode(r)?)),
            RESP_ERROR => Ok(Response::Error(WireError::decode(r)?)),
            _ => Err(PersistError::Corrupt {
                what: "unknown response tag",
            }),
        }
    }
}

/// What [`Request::Stats`] reports: the backend's shape plus the
/// daemon's counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// The serving index kind's stable name.
    pub kind: String,
    /// The endpoint scalar's type name.
    pub endpoint: String,
    /// Shards behind the facade (1 = monolithic).
    pub shards: usize,
    /// Live intervals.
    pub len: usize,
    /// Live intervals per shard.
    pub shard_lens: Vec<usize>,
    /// Whether the backend holds per-interval weights.
    pub weighted: bool,
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Requests served (all kinds, including failed ones).
    pub requests: u64,
    /// Individual queries answered inside `Run` batches.
    pub queries: u64,
    /// Individual mutations applied inside `Apply` batches.
    pub mutations: u64,
    /// Protocol-level errors observed (malformed frames/messages).
    pub protocol_errors: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Whether the server is draining for shutdown.
    pub draining: bool,
}

impl Codec for ServerStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.kind.encode_into(out);
        self.endpoint.encode_into(out);
        self.shards.encode_into(out);
        self.len.encode_into(out);
        self.shard_lens.encode_into(out);
        self.weighted.encode_into(out);
        self.connections_accepted.encode_into(out);
        self.connections_active.encode_into(out);
        self.requests.encode_into(out);
        self.queries.encode_into(out);
        self.mutations.encode_into(out);
        self.protocol_errors.encode_into(out);
        self.uptime_ms.encode_into(out);
        self.draining.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ServerStats {
            kind: String::decode(r)?,
            endpoint: String::decode(r)?,
            shards: usize::decode(r)?,
            len: usize::decode(r)?,
            shard_lens: Vec::decode(r)?,
            weighted: bool::decode(r)?,
            connections_accepted: u64::decode(r)?,
            connections_active: u64::decode(r)?,
            requests: u64::decode(r)?,
            queries: u64::decode(r)?,
            mutations: u64::decode(r)?,
            protocol_errors: u64::decode(r)?,
            uptime_ms: u64::decode(r)?,
            draining: bool::decode(r)?,
        })
    }
}

/// What [`Request::InspectSnapshot`] reports: the manifest fields a
/// remote admin needs, without shipping any shard payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// The snapshot's on-disk format version.
    pub format_version: u16,
    /// Saved index kind's stable name.
    pub kind: String,
    /// Saved endpoint scalar's type name.
    pub endpoint: String,
    /// Whether the snapshot holds per-interval weights.
    pub weighted: bool,
    /// Shard count of the snapshot.
    pub shards: usize,
    /// The saved backend's base seed.
    pub seed: u64,
    /// Live intervals at save time.
    pub len: usize,
}

impl Codec for SnapshotSummary {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.format_version.encode_into(out);
        self.kind.encode_into(out);
        self.endpoint.encode_into(out);
        self.weighted.encode_into(out);
        self.shards.encode_into(out);
        self.seed.encode_into(out);
        self.len.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SnapshotSummary {
            format_version: u16::decode(r)?,
            kind: String::decode(r)?,
            endpoint: String::decode(r)?,
            weighted: bool::decode(r)?,
            shards: usize::decode(r)?,
            seed: u64::decode(r)?,
            len: usize::decode(r)?,
        })
    }
}

/// Encodes any message into a fresh frame payload.
pub fn encode_message<T: Codec>(msg: &T) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode_into(&mut out);
    out
}

/// Decodes a whole frame payload as one message; trailing bytes are
/// corrupt (a frame carries exactly one message).
pub fn decode_message<T: Codec>(payload: &[u8]) -> Result<T, PersistError> {
    let mut r = Reader::new(payload);
    let msg = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(PersistError::Corrupt {
            what: "frame has trailing bytes after its message",
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::Interval;

    #[test]
    fn requests_roundtrip() {
        let reqs: Vec<Request<i64>> = vec![
            Request::Health,
            Request::Stats,
            Request::Run {
                seed: Some(7),
                queries: vec![
                    Query::Sample {
                        q: Interval::new(1, 9),
                        s: 4,
                    },
                    Query::Count {
                        q: Interval::new(-2, 2),
                    },
                ],
            },
            Request::Apply {
                muts: vec![
                    Mutation::Insert {
                        iv: Interval::new(5, 6),
                    },
                    Mutation::Delete { id: 3 },
                ],
            },
            Request::Save { dir: "snap".into() },
            Request::InspectSnapshot { dir: "snap".into() },
            Request::Load { dir: "snap".into() },
            Request::Shutdown,
        ];
        for req in &reqs {
            let payload = encode_message(req);
            assert_eq!(&decode_message::<Request<i64>>(&payload).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Ok,
            Response::Run(vec![
                Ok(QueryOutput::Count(3)),
                Err(WireError::protocol(
                    irs_core::ErrorCode::QueryNotWeighted,
                    "nope",
                )),
            ]),
            Response::Apply(vec![Ok(UpdateOutput::Inserted(9))]),
            Response::Stats(ServerStats {
                kind: "ait".into(),
                endpoint: "i64".into(),
                shards: 4,
                len: 100,
                shard_lens: vec![25; 4],
                weighted: false,
                connections_accepted: 3,
                connections_active: 1,
                requests: 17,
                queries: 120,
                mutations: 5,
                protocol_errors: 0,
                uptime_ms: 12345,
                draining: false,
            }),
            Response::Snapshot(SnapshotSummary {
                format_version: 1,
                kind: "kds".into(),
                endpoint: "i64".into(),
                weighted: true,
                shards: 2,
                seed: 42,
                len: 10,
            }),
            Response::Error(WireError::protocol(
                irs_core::ErrorCode::UnknownMessage,
                "tag 99",
            )),
        ];
        for resp in &resps {
            let payload = encode_message(resp);
            assert_eq!(&decode_message::<Response>(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn endpoint_mismatch_is_typed_at_decode() {
        let req: Request<i64> = Request::Run {
            seed: None,
            queries: vec![Query::Stab { p: 5 }],
        };
        let payload = encode_message(&req);
        // Decoding an i64 request as a u32 server refuses before
        // touching any interval bytes.
        match decode_message::<Request<u32>>(&payload) {
            Err(PersistError::EndpointMismatch { stored, expected }) => {
                assert_eq!(stored, "i64");
                assert_eq!(expected, "u32");
            }
            other => panic!("expected EndpointMismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_corrupt() {
        assert!(matches!(
            decode_message::<Request<i64>>(&[0x63]),
            Err(PersistError::Corrupt { .. })
        ));
        assert!(matches!(
            decode_message::<Response>(&[0x63]),
            Err(PersistError::Corrupt { .. })
        ));
        let mut payload = encode_message(&Response::Ok);
        payload.push(0xFF);
        assert!(matches!(
            decode_message::<Response>(&payload),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
