//! The typed request/response vocabulary carried inside frames.
//!
//! Every message is one frame payload: a tag byte followed by
//! [`Codec`]-encoded fields. Requests that carry intervals
//! ([`Request::Run`], [`Request::Apply`]) also carry the endpoint
//! scalar's [`Codec::type_name`]; the server decodes with its own
//! endpoint type and refuses a mismatch with the typed
//! [`PersistError::EndpointMismatch`] — exactly the policy snapshots
//! follow, so a `u32` client can never misread an `i64` server.
//!
//! Decoding never trusts the bytes: unknown tags, truncated bodies, and
//! trailing garbage are all typed [`PersistError`]s, which the server
//! maps to stable wire error codes (see `irs_core::wire`).

use irs_core::persist::{Codec, PersistError, Reader};
use irs_core::{GridEndpoint, Mutation, UpdateOutput, WireError};
use irs_engine::{Query, QueryOutput};

/// One request frame, client → server.
#[derive(Clone, Debug, PartialEq)]
pub enum Request<E> {
    /// Liveness probe; answered with [`Response::Ok`] while serving.
    Health,
    /// Engine + server counters; answered with [`Response::Stats`].
    Stats,
    /// A batch of queries, answered with [`Response::Run`] carrying one
    /// result per query in order. `seed: Some(s)` pins the draw stream
    /// (the server's `run_seeded` — identical seed, batch, and engine
    /// state reproduce identical bytes); `None` advances the server's
    /// own stream.
    Run {
        /// Explicit draw-stream seed, or `None` for the server's stream.
        seed: Option<u64>,
        /// The queries, answered in order.
        queries: Vec<Query<E>>,
    },
    /// A batch of typed mutations, applied under the server's writer
    /// seat; answered with [`Response::Apply`] carrying one result per
    /// mutation in order.
    Apply {
        /// The mutations, applied in order.
        muts: Vec<Mutation<E>>,
    },
    /// Saves the serving backend to a snapshot directory **on the
    /// server's filesystem**; answered with [`Response::Ok`].
    Save {
        /// Target directory (created if absent), server-side.
        dir: String,
    },
    /// Reads a snapshot directory's manifest (server-side) without
    /// loading it; answered with [`Response::Snapshot`].
    InspectSnapshot {
        /// The snapshot directory, server-side.
        dir: String,
    },
    /// Replaces the serving backend with one loaded from a snapshot
    /// directory (server-side); answered with [`Response::Ok`]. In-flight
    /// requests on other connections finish against the old backend;
    /// later ones see the new one.
    Load {
        /// The snapshot directory, server-side.
        dir: String,
    },
    /// Asks the server to drain and exit: it stops accepting
    /// connections, lets every in-flight request finish and flush its
    /// response (this one answered with [`Response::Ok`] first), then
    /// shuts down.
    Shutdown,
    /// Creates an **empty** named collection on a catalog server (data
    /// arrives through [`Request::ApplyIn`]); answered with
    /// [`Response::Collections`] carrying the new collection's summary.
    /// A single-collection server refuses with the catalog-not-serving
    /// code.
    CreateCollection {
        /// The collection's shape.
        spec: WireCollectionSpec,
    },
    /// Removes a named collection; answered with [`Response::Ok`].
    DropCollection {
        /// The collection to drop.
        name: String,
    },
    /// Describes every collection; answered with
    /// [`Response::Collections`], sorted by name.
    ListCollections,
    /// [`Request::Run`] against a named collection.
    RunIn {
        /// The target collection.
        collection: String,
        /// Explicit draw-stream seed, or `None` for the collection's
        /// own stream.
        seed: Option<u64>,
        /// The queries, answered in order.
        queries: Vec<Query<E>>,
    },
    /// [`Request::Apply`] against a named collection. Ids in mutations
    /// and outputs are the collection's **global** ids — stable across
    /// re-indexes.
    ApplyIn {
        /// The target collection.
        collection: String,
        /// The mutations, applied in order.
        muts: Vec<Mutation<E>>,
    },
    /// Saves the whole catalog (every collection plus one manifest) to
    /// a directory on the **server's** filesystem; answered with
    /// [`Response::Ok`].
    SaveCatalog {
        /// Target directory (created if absent), server-side.
        dir: String,
    },
    /// Replaces the serving catalog with one loaded from a server-side
    /// directory; answered with [`Response::Ok`].
    LoadCatalog {
        /// The catalog directory, server-side.
        dir: String,
    },
    /// Rebuilds a collection on a different index kind and swaps it in
    /// atomically (readers keep flowing); answered with
    /// [`Response::Collections`] carrying the collection's post-swap
    /// summary.
    Reindex {
        /// The target collection.
        collection: String,
        /// The new kind's stable name.
        kind: String,
    },
    /// Subscribes this connection to the primary's write-ahead log.
    /// Answered with [`Response::Replication`] (the ack), after which
    /// the connection becomes a push stream of [`Response::LogRecord`]
    /// frames for every record with sequence ≥ `from_seq` — the log
    /// tail first, then live appends. A non-primary refuses with the
    /// replication-not-primary code; a `from_seq` older than the log's
    /// start with replication-stale-subscribe (re-bootstrap from a
    /// snapshot).
    Subscribe {
        /// First sequence number wanted (usually `snapshot_seq + 1`).
        from_seq: u64,
    },
    /// Fetches a consistent snapshot of the primary for replica
    /// bootstrap. Answered first with [`Response::Replication`] whose
    /// `last_seq` is the snapshot's checkpoint, then a stream of
    /// [`Response::SnapshotChunk`] frames (every file of a snapshot
    /// taken under the writer seat, including the sequence-number
    /// checkpoint sidecar), terminated by [`Response::Ok`].
    FetchSnapshot,
    /// Reports the server's replication role and log position; answered
    /// with [`Response::Replication`]. Works on any server (role
    /// `"none"` when no log is kept).
    ReplicationStatus,
    /// Promotes a following replica to primary: it stops following,
    /// keeps its own log, and starts accepting mutations. Answered with
    /// [`Response::Replication`] (the post-promotion status); a server
    /// that is not a following replica refuses with the
    /// replication-not-replica code.
    Promote,
}

const REQ_HEALTH: u8 = 1;
const REQ_STATS: u8 = 2;
const REQ_RUN: u8 = 3;
const REQ_APPLY: u8 = 4;
const REQ_SAVE: u8 = 5;
const REQ_INSPECT: u8 = 6;
const REQ_LOAD: u8 = 7;
const REQ_SHUTDOWN: u8 = 8;
const REQ_CREATE_COLLECTION: u8 = 9;
const REQ_DROP_COLLECTION: u8 = 10;
const REQ_LIST_COLLECTIONS: u8 = 11;
const REQ_RUN_IN: u8 = 12;
const REQ_APPLY_IN: u8 = 13;
const REQ_SAVE_CATALOG: u8 = 14;
const REQ_LOAD_CATALOG: u8 = 15;
const REQ_REINDEX: u8 = 16;
const REQ_SUBSCRIBE: u8 = 17;
const REQ_FETCH_SNAPSHOT: u8 = 18;
const REQ_REPLICATION_STATUS: u8 = 19;
const REQ_PROMOTE: u8 = 20;

/// Decodes the endpoint type name stamped into a `Run`/`Apply` body and
/// refuses a mismatch — the wire twin of the snapshot manifest check.
fn check_endpoint<E: GridEndpoint>(r: &mut Reader<'_>) -> Result<(), PersistError> {
    let stored = String::decode(r)?;
    if stored != E::type_name() {
        return Err(PersistError::EndpointMismatch {
            stored,
            expected: E::type_name(),
        });
    }
    Ok(())
}

impl<E: GridEndpoint> Codec for Request<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Request::Health => out.push(REQ_HEALTH),
            Request::Stats => out.push(REQ_STATS),
            Request::Run { seed, queries } => {
                out.push(REQ_RUN);
                E::type_name().to_string().encode_into(out);
                seed.encode_into(out);
                queries.encode_into(out);
            }
            Request::Apply { muts } => {
                out.push(REQ_APPLY);
                E::type_name().to_string().encode_into(out);
                muts.encode_into(out);
            }
            Request::Save { dir } => {
                out.push(REQ_SAVE);
                dir.encode_into(out);
            }
            Request::InspectSnapshot { dir } => {
                out.push(REQ_INSPECT);
                dir.encode_into(out);
            }
            Request::Load { dir } => {
                out.push(REQ_LOAD);
                dir.encode_into(out);
            }
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::CreateCollection { spec } => {
                out.push(REQ_CREATE_COLLECTION);
                spec.encode_into(out);
            }
            Request::DropCollection { name } => {
                out.push(REQ_DROP_COLLECTION);
                name.encode_into(out);
            }
            Request::ListCollections => out.push(REQ_LIST_COLLECTIONS),
            Request::RunIn {
                collection,
                seed,
                queries,
            } => {
                out.push(REQ_RUN_IN);
                E::type_name().to_string().encode_into(out);
                collection.encode_into(out);
                seed.encode_into(out);
                queries.encode_into(out);
            }
            Request::ApplyIn { collection, muts } => {
                out.push(REQ_APPLY_IN);
                E::type_name().to_string().encode_into(out);
                collection.encode_into(out);
                muts.encode_into(out);
            }
            Request::SaveCatalog { dir } => {
                out.push(REQ_SAVE_CATALOG);
                dir.encode_into(out);
            }
            Request::LoadCatalog { dir } => {
                out.push(REQ_LOAD_CATALOG);
                dir.encode_into(out);
            }
            Request::Reindex { collection, kind } => {
                out.push(REQ_REINDEX);
                collection.encode_into(out);
                kind.encode_into(out);
            }
            Request::Subscribe { from_seq } => {
                out.push(REQ_SUBSCRIBE);
                E::type_name().to_string().encode_into(out);
                from_seq.encode_into(out);
            }
            Request::FetchSnapshot => out.push(REQ_FETCH_SNAPSHOT),
            Request::ReplicationStatus => out.push(REQ_REPLICATION_STATUS),
            Request::Promote => out.push(REQ_PROMOTE),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            REQ_HEALTH => Ok(Request::Health),
            REQ_STATS => Ok(Request::Stats),
            REQ_RUN => {
                check_endpoint::<E>(r)?;
                Ok(Request::Run {
                    seed: Option::decode(r)?,
                    queries: Vec::decode(r)?,
                })
            }
            REQ_APPLY => {
                check_endpoint::<E>(r)?;
                Ok(Request::Apply {
                    muts: Vec::decode(r)?,
                })
            }
            REQ_SAVE => Ok(Request::Save {
                dir: String::decode(r)?,
            }),
            REQ_INSPECT => Ok(Request::InspectSnapshot {
                dir: String::decode(r)?,
            }),
            REQ_LOAD => Ok(Request::Load {
                dir: String::decode(r)?,
            }),
            REQ_SHUTDOWN => Ok(Request::Shutdown),
            REQ_CREATE_COLLECTION => Ok(Request::CreateCollection {
                spec: WireCollectionSpec::decode(r)?,
            }),
            REQ_DROP_COLLECTION => Ok(Request::DropCollection {
                name: String::decode(r)?,
            }),
            REQ_LIST_COLLECTIONS => Ok(Request::ListCollections),
            REQ_RUN_IN => {
                check_endpoint::<E>(r)?;
                Ok(Request::RunIn {
                    collection: String::decode(r)?,
                    seed: Option::decode(r)?,
                    queries: Vec::decode(r)?,
                })
            }
            REQ_APPLY_IN => {
                check_endpoint::<E>(r)?;
                Ok(Request::ApplyIn {
                    collection: String::decode(r)?,
                    muts: Vec::decode(r)?,
                })
            }
            REQ_SAVE_CATALOG => Ok(Request::SaveCatalog {
                dir: String::decode(r)?,
            }),
            REQ_LOAD_CATALOG => Ok(Request::LoadCatalog {
                dir: String::decode(r)?,
            }),
            REQ_REINDEX => Ok(Request::Reindex {
                collection: String::decode(r)?,
                kind: String::decode(r)?,
            }),
            REQ_SUBSCRIBE => {
                check_endpoint::<E>(r)?;
                Ok(Request::Subscribe {
                    from_seq: u64::decode(r)?,
                })
            }
            REQ_FETCH_SNAPSHOT => Ok(Request::FetchSnapshot),
            REQ_REPLICATION_STATUS => Ok(Request::ReplicationStatus),
            REQ_PROMOTE => Ok(Request::Promote),
            _ => Err(PersistError::Corrupt {
                what: "unknown request tag",
            }),
        }
    }
}

/// One response frame, server → client.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Success with no payload (health, save, load, shutdown).
    Ok,
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Answer to [`Request::Run`]: one result per query, in order —
    /// the same `Vec<Result<..>>` shape the in-process `Engine::run`
    /// returns, with errors in wire form.
    Run(Vec<Result<QueryOutput, WireError>>),
    /// Answer to [`Request::Apply`]: one result per mutation, in order.
    Apply(Vec<Result<UpdateOutput, WireError>>),
    /// Answer to [`Request::InspectSnapshot`].
    Snapshot(SnapshotSummary),
    /// The request as a whole failed (protocol error, refused admin
    /// operation, draining server). Per-query/per-mutation failures
    /// travel inside [`Response::Run`]/[`Response::Apply`] instead.
    Error(WireError),
    /// Answer to [`Request::ListCollections`] (every collection, sorted
    /// by name) and to [`Request::CreateCollection`]/[`Request::Reindex`]
    /// (a single-element vector describing the affected collection).
    Collections(Vec<CollectionSummary>),
    /// One pushed write-ahead-log record on a subscribed connection.
    LogRecord(LogRecordFrame),
    /// One span of one snapshot file, streamed in answer to
    /// [`Request::FetchSnapshot`].
    SnapshotChunk(SnapshotChunk),
    /// The server's replication role and log position: the answer to
    /// [`Request::ReplicationStatus`]/[`Request::Promote`], the
    /// subscribe ack, and the snapshot-stream terminator.
    Replication(ReplicationStatus),
}

const RESP_OK: u8 = 1;
const RESP_STATS: u8 = 2;
const RESP_RUN: u8 = 3;
const RESP_APPLY: u8 = 4;
const RESP_SNAPSHOT: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_COLLECTIONS: u8 = 7;
const RESP_LOG_RECORD: u8 = 8;
const RESP_SNAPSHOT_CHUNK: u8 = 9;
const RESP_REPLICATION: u8 = 10;

impl Codec for Response {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(RESP_OK),
            Response::Stats(stats) => {
                out.push(RESP_STATS);
                stats.encode_into(out);
            }
            Response::Run(results) => {
                out.push(RESP_RUN);
                results.encode_into(out);
            }
            Response::Apply(results) => {
                out.push(RESP_APPLY);
                results.encode_into(out);
            }
            Response::Snapshot(info) => {
                out.push(RESP_SNAPSHOT);
                info.encode_into(out);
            }
            Response::Error(e) => {
                out.push(RESP_ERROR);
                e.encode_into(out);
            }
            Response::Collections(summaries) => {
                out.push(RESP_COLLECTIONS);
                summaries.encode_into(out);
            }
            Response::LogRecord(frame) => {
                out.push(RESP_LOG_RECORD);
                frame.encode_into(out);
            }
            Response::SnapshotChunk(chunk) => {
                out.push(RESP_SNAPSHOT_CHUNK);
                chunk.encode_into(out);
            }
            Response::Replication(status) => {
                out.push(RESP_REPLICATION);
                status.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            RESP_OK => Ok(Response::Ok),
            RESP_STATS => Ok(Response::Stats(ServerStats::decode(r)?)),
            RESP_RUN => Ok(Response::Run(Vec::decode(r)?)),
            RESP_APPLY => Ok(Response::Apply(Vec::decode(r)?)),
            RESP_SNAPSHOT => Ok(Response::Snapshot(SnapshotSummary::decode(r)?)),
            RESP_ERROR => Ok(Response::Error(WireError::decode(r)?)),
            RESP_COLLECTIONS => Ok(Response::Collections(Vec::decode(r)?)),
            RESP_LOG_RECORD => Ok(Response::LogRecord(LogRecordFrame::decode(r)?)),
            RESP_SNAPSHOT_CHUNK => Ok(Response::SnapshotChunk(SnapshotChunk::decode(r)?)),
            RESP_REPLICATION => Ok(Response::Replication(ReplicationStatus::decode(r)?)),
            _ => Err(PersistError::Corrupt {
                what: "unknown response tag",
            }),
        }
    }
}

/// What [`Request::Stats`] reports: the backend's shape plus the
/// daemon's counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// The serving index kind's stable name.
    pub kind: String,
    /// The endpoint scalar's type name.
    pub endpoint: String,
    /// Shards behind the facade (1 = monolithic).
    pub shards: usize,
    /// Live intervals.
    pub len: usize,
    /// Live intervals per shard.
    pub shard_lens: Vec<usize>,
    /// Whether the backend holds per-interval weights.
    pub weighted: bool,
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Requests served (all kinds, including failed ones).
    pub requests: u64,
    /// Individual queries answered inside `Run` batches.
    pub queries: u64,
    /// Individual mutations applied inside `Apply` batches.
    pub mutations: u64,
    /// Protocol-level errors observed (malformed frames/messages).
    pub protocol_errors: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Whether the server is draining for shutdown.
    pub draining: bool,
}

impl Codec for ServerStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.kind.encode_into(out);
        self.endpoint.encode_into(out);
        self.shards.encode_into(out);
        self.len.encode_into(out);
        self.shard_lens.encode_into(out);
        self.weighted.encode_into(out);
        self.connections_accepted.encode_into(out);
        self.connections_active.encode_into(out);
        self.requests.encode_into(out);
        self.queries.encode_into(out);
        self.mutations.encode_into(out);
        self.protocol_errors.encode_into(out);
        self.uptime_ms.encode_into(out);
        self.draining.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ServerStats {
            kind: String::decode(r)?,
            endpoint: String::decode(r)?,
            shards: usize::decode(r)?,
            len: usize::decode(r)?,
            shard_lens: Vec::decode(r)?,
            weighted: bool::decode(r)?,
            connections_accepted: u64::decode(r)?,
            connections_active: u64::decode(r)?,
            requests: u64::decode(r)?,
            queries: u64::decode(r)?,
            mutations: u64::decode(r)?,
            protocol_errors: u64::decode(r)?,
            uptime_ms: u64::decode(r)?,
            draining: bool::decode(r)?,
        })
    }
}

/// The shape of a collection a remote client asks a catalog server to
/// create. The wire crate deliberately mirrors the catalog's spec with
/// plain fields (no `irs-catalog` dependency): `kind: None` requests
/// the adaptive planner (`kind: auto`), with the three hint fields as
/// its inputs; `kind: Some(name)` pins a kind by stable name and the
/// hints are ignored.
#[derive(Clone, Debug, PartialEq)]
pub struct WireCollectionSpec {
    /// Collection name (validated server-side: 1–64 bytes of lowercase
    /// ASCII letters, digits, `-`, `_`, starting with a letter/digit).
    pub name: String,
    /// Stable kind name, or `None` for `kind: auto`.
    pub kind: Option<String>,
    /// Planner hint: expected mutations per query, in `[0, 1]`.
    pub update_rate: f64,
    /// Planner hint: expected query extent as a domain fraction.
    pub expected_extent: f64,
    /// Whether the collection carries per-interval weights.
    pub weighted: bool,
    /// Backend shard count (0 is normalised to 1 server-side).
    pub shards: usize,
    /// Draw-stream seed.
    pub seed: u64,
}

impl Codec for WireCollectionSpec {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        self.kind.encode_into(out);
        self.update_rate.encode_into(out);
        self.expected_extent.encode_into(out);
        self.weighted.encode_into(out);
        self.shards.encode_into(out);
        self.seed.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(WireCollectionSpec {
            name: String::decode(r)?,
            kind: Option::decode(r)?,
            update_rate: f64::decode(r)?,
            expected_extent: f64::decode(r)?,
            weighted: bool::decode(r)?,
            shards: usize::decode(r)?,
            seed: u64::decode(r)?,
        })
    }
}

/// One collection's row in a [`Response::Collections`] answer.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectionSummary {
    /// Collection name.
    pub name: String,
    /// Stable name of the kind currently serving it.
    pub kind: String,
    /// Backend shard count.
    pub shards: usize,
    /// Live intervals.
    pub len: usize,
    /// Whether the collection carries per-interval weights.
    pub weighted: bool,
    /// Estimated heap bytes charged against the catalog budget.
    pub heap_bytes: usize,
    /// Whether the kind was chosen by the adaptive planner.
    pub auto: bool,
}

impl Codec for CollectionSummary {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        self.kind.encode_into(out);
        self.shards.encode_into(out);
        self.len.encode_into(out);
        self.weighted.encode_into(out);
        self.heap_bytes.encode_into(out);
        self.auto.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(CollectionSummary {
            name: String::decode(r)?,
            kind: String::decode(r)?,
            shards: usize::decode(r)?,
            len: usize::decode(r)?,
            weighted: bool::decode(r)?,
            heap_bytes: usize::decode(r)?,
            auto: bool::decode(r)?,
        })
    }
}

/// What [`Request::InspectSnapshot`] reports: the manifest fields a
/// remote admin needs, without shipping any shard payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// The snapshot's on-disk format version.
    pub format_version: u16,
    /// Saved index kind's stable name.
    pub kind: String,
    /// Saved endpoint scalar's type name.
    pub endpoint: String,
    /// Whether the snapshot holds per-interval weights.
    pub weighted: bool,
    /// Shard count of the snapshot.
    pub shards: usize,
    /// The saved backend's base seed.
    pub seed: u64,
    /// Live intervals at save time.
    pub len: usize,
}

impl Codec for SnapshotSummary {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.format_version.encode_into(out);
        self.kind.encode_into(out);
        self.endpoint.encode_into(out);
        self.weighted.encode_into(out);
        self.shards.encode_into(out);
        self.seed.encode_into(out);
        self.len.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SnapshotSummary {
            format_version: u16::decode(r)?,
            kind: String::decode(r)?,
            endpoint: String::decode(r)?,
            weighted: bool::decode(r)?,
            shards: usize::decode(r)?,
            seed: u64::decode(r)?,
            len: usize::decode(r)?,
        })
    }
}

/// One write-ahead-log record as pushed to a subscriber. The payload is
/// the record's on-disk section payload verbatim (an
/// `irs_core::wal::LogRecord` encoding, already CRC-verified by the
/// primary's tailer and re-framed by the wire's own CRC), so a replica
/// appends it to its own log and decodes it with
/// `irs_core::wal::decode_record_payload` — no re-encoding anywhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecordFrame {
    /// The record's sequence number (also inside `payload`; duplicated
    /// here so routing never needs to decode the body).
    pub seq: u64,
    /// The encoded `LogRecord`, exactly as on the primary's disk.
    pub payload: Vec<u8>,
}

impl Codec for LogRecordFrame {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.seq.encode_into(out);
        self.payload.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(LogRecordFrame {
            seq: u64::decode(r)?,
            payload: Vec::decode(r)?,
        })
    }
}

/// One span of one snapshot file, streamed during replica bootstrap.
/// `path` is relative to the snapshot directory; receivers must refuse
/// absolute paths and `..` components (a hostile primary must not be
/// able to write outside the bootstrap directory).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotChunk {
    /// File path relative to the snapshot directory (`/`-separated).
    pub path: String,
    /// Byte offset of this span within the file.
    pub offset: u64,
    /// The file's total length, so the receiver can detect a short
    /// stream.
    pub total_len: u64,
    /// The span's bytes.
    pub bytes: Vec<u8>,
}

impl Codec for SnapshotChunk {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.path.encode_into(out);
        self.offset.encode_into(out);
        self.total_len.encode_into(out);
        self.bytes.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(SnapshotChunk {
            path: String::decode(r)?,
            offset: u64::decode(r)?,
            total_len: u64::decode(r)?,
            bytes: Vec::decode(r)?,
        })
    }
}

/// A server's replication role and log position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicationStatus {
    /// `"primary"`, `"replica"`, or `"none"` (no log kept).
    pub role: String,
    /// Last log sequence number applied (0 when nothing ever was).
    pub last_seq: u64,
    /// Sequence number the server's log starts at (0 when no log).
    pub log_start_seq: u64,
    /// The primary a replica follows, when `role == "replica"`.
    pub primary: Option<String>,
}

impl Codec for ReplicationStatus {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.role.encode_into(out);
        self.last_seq.encode_into(out);
        self.log_start_seq.encode_into(out);
        self.primary.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ReplicationStatus {
            role: String::decode(r)?,
            last_seq: u64::decode(r)?,
            log_start_seq: u64::decode(r)?,
            primary: Option::decode(r)?,
        })
    }
}

/// Encodes any message into a fresh frame payload.
pub fn encode_message<T: Codec>(msg: &T) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode_into(&mut out);
    out
}

/// Decodes a whole frame payload as one message; trailing bytes are
/// corrupt (a frame carries exactly one message).
pub fn decode_message<T: Codec>(payload: &[u8]) -> Result<T, PersistError> {
    let mut r = Reader::new(payload);
    let msg = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(PersistError::Corrupt {
            what: "frame has trailing bytes after its message",
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::Interval;

    #[test]
    fn requests_roundtrip() {
        let reqs: Vec<Request<i64>> = vec![
            Request::Health,
            Request::Stats,
            Request::Run {
                seed: Some(7),
                queries: vec![
                    Query::Sample {
                        q: Interval::new(1, 9),
                        s: 4,
                    },
                    Query::Count {
                        q: Interval::new(-2, 2),
                    },
                ],
            },
            Request::Apply {
                muts: vec![
                    Mutation::Insert {
                        iv: Interval::new(5, 6),
                    },
                    Mutation::Delete { id: 3 },
                ],
            },
            Request::Save { dir: "snap".into() },
            Request::InspectSnapshot { dir: "snap".into() },
            Request::Load { dir: "snap".into() },
            Request::Shutdown,
            Request::CreateCollection {
                spec: WireCollectionSpec {
                    name: "trips".into(),
                    kind: None,
                    update_rate: 0.25,
                    expected_extent: 0.01,
                    weighted: true,
                    shards: 4,
                    seed: 99,
                },
            },
            Request::DropCollection {
                name: "trips".into(),
            },
            Request::ListCollections,
            Request::RunIn {
                collection: "trips".into(),
                seed: Some(11),
                queries: vec![Query::Stab { p: 0 }],
            },
            Request::ApplyIn {
                collection: "trips".into(),
                muts: vec![Mutation::Delete { id: 7 }],
            },
            Request::SaveCatalog { dir: "cat".into() },
            Request::LoadCatalog { dir: "cat".into() },
            Request::Reindex {
                collection: "trips".into(),
                kind: "ait".into(),
            },
            Request::Subscribe { from_seq: 42 },
            Request::FetchSnapshot,
            Request::ReplicationStatus,
            Request::Promote,
        ];
        for req in &reqs {
            let payload = encode_message(req);
            assert_eq!(&decode_message::<Request<i64>>(&payload).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Ok,
            Response::Run(vec![
                Ok(QueryOutput::Count(3)),
                Err(WireError::protocol(
                    irs_core::ErrorCode::QueryNotWeighted,
                    "nope",
                )),
            ]),
            Response::Apply(vec![Ok(UpdateOutput::Inserted(9))]),
            Response::Stats(ServerStats {
                kind: "ait".into(),
                endpoint: "i64".into(),
                shards: 4,
                len: 100,
                shard_lens: vec![25; 4],
                weighted: false,
                connections_accepted: 3,
                connections_active: 1,
                requests: 17,
                queries: 120,
                mutations: 5,
                protocol_errors: 0,
                uptime_ms: 12345,
                draining: false,
            }),
            Response::Snapshot(SnapshotSummary {
                format_version: 1,
                kind: "kds".into(),
                endpoint: "i64".into(),
                weighted: true,
                shards: 2,
                seed: 42,
                len: 10,
            }),
            Response::Error(WireError::protocol(
                irs_core::ErrorCode::UnknownMessage,
                "tag 99",
            )),
            Response::Collections(vec![
                CollectionSummary {
                    name: "trips".into(),
                    kind: "awit-dynamic".into(),
                    shards: 4,
                    len: 1000,
                    weighted: true,
                    heap_bytes: 123_456,
                    auto: true,
                },
                CollectionSummary {
                    name: "zones".into(),
                    kind: "kds".into(),
                    shards: 1,
                    len: 50,
                    weighted: false,
                    heap_bytes: 4096,
                    auto: false,
                },
            ]),
            Response::LogRecord(LogRecordFrame {
                seq: 17,
                payload: vec![1, 2, 3, 0xFF],
            }),
            Response::SnapshotChunk(SnapshotChunk {
                path: "shard-0000.irs".into(),
                offset: 4096,
                total_len: 8192,
                bytes: vec![0, 9, 8],
            }),
            Response::Replication(ReplicationStatus {
                role: "replica".into(),
                last_seq: 41,
                log_start_seq: 12,
                primary: Some("127.0.0.1:9009".into()),
            }),
        ];
        for resp in &resps {
            let payload = encode_message(resp);
            assert_eq!(&decode_message::<Response>(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn endpoint_mismatch_is_typed_at_decode() {
        let req: Request<i64> = Request::Run {
            seed: None,
            queries: vec![Query::Stab { p: 5 }],
        };
        let payload = encode_message(&req);
        // Decoding an i64 request as a u32 server refuses before
        // touching any interval bytes.
        match decode_message::<Request<u32>>(&payload) {
            Err(PersistError::EndpointMismatch { stored, expected }) => {
                assert_eq!(stored, "i64");
                assert_eq!(expected, "u32");
            }
            other => panic!("expected EndpointMismatch, got {other:?}"),
        }
        // Collection-scoped batches carry the same stamp.
        let req: Request<i64> = Request::RunIn {
            collection: "trips".into(),
            seed: None,
            queries: vec![Query::Stab { p: 5 }],
        };
        let payload = encode_message(&req);
        assert!(matches!(
            decode_message::<Request<u32>>(&payload),
            Err(PersistError::EndpointMismatch { .. })
        ));
        // Subscriptions carry it too: the pushed log records are typed.
        let req: Request<i64> = Request::Subscribe { from_seq: 1 };
        let payload = encode_message(&req);
        assert!(matches!(
            decode_message::<Request<u32>>(&payload),
            Err(PersistError::EndpointMismatch { .. })
        ));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_corrupt() {
        assert!(matches!(
            decode_message::<Request<i64>>(&[0x63]),
            Err(PersistError::Corrupt { .. })
        ));
        assert!(matches!(
            decode_message::<Response>(&[0x63]),
            Err(PersistError::Corrupt { .. })
        ));
        let mut payload = encode_message(&Response::Ok);
        payload.push(0xFF);
        assert!(matches!(
            decode_message::<Response>(&payload),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
