//! The blocking remote client: the network twin of `irs-client`'s
//! `Client`.
//!
//! A [`RemoteClient`] owns one TCP connection and speaks one request /
//! one response at a time. It mirrors the in-process surface — batch
//! entry points (`run`, `run_seeded`, `apply`) plus the one-query
//! conveniences (`count`, `sample`, `insert`, …) — but every failure,
//! whether raised by the engine, the snapshot layer, or the wire
//! itself, arrives as a [`WireError`] carrying its stable
//! [`ErrorCode`].
//!
//! Connections are cheap; for concurrent load, open one `RemoteClient`
//! per thread (the server runs a thread per connection and serializes
//! mutations through its single writer seat, so remote writers from
//! many connections compose exactly like `Client::writer` callers in
//! one process).

use irs_core::persist::PersistError;
use irs_core::{ErrorCode, GridEndpoint, Interval, ItemId, Mutation, UpdateOutput, WireError};
use irs_engine::{Query, QueryOutput};
use std::io;
use std::marker::PhantomData;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Component, Path, PathBuf};
use std::time::Duration;

use crate::frame::{read_frame_blocking, write_frame, FrameReader, ReadEvent};
use crate::message::{
    decode_message, encode_message, CollectionSummary, LogRecordFrame, ReplicationStatus, Request,
    Response, ServerStats, SnapshotChunk, SnapshotSummary, WireCollectionSpec,
};

/// A blocking connection to an `irs-server`, typed by the endpoint
/// scalar `E` it expects the server to hold. A wrong guess is refused
/// by the server on the first `Run`/`Apply` with
/// [`ErrorCode::WrongEndpoint`]'s persist twin rather than misread.
#[derive(Debug)]
pub struct RemoteClient<E> {
    stream: TcpStream,
    reader: FrameReader,
    _endpoint: PhantomData<fn() -> E>,
}

/// Lifts a response-shape violation (the server answered, but with the
/// wrong variant) into a typed wire error.
fn unexpected(what: &'static str, got: &Response) -> WireError {
    WireError::protocol(
        ErrorCode::BadMessage,
        format!("expected {what} response, got {got:?}"),
    )
}

impl<E: GridEndpoint> RemoteClient<E> {
    /// Connects to a running server. No handshake bytes are exchanged
    /// until the first request; use [`RemoteClient::health`] to confirm
    /// the peer speaks this protocol.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RemoteClient {
            stream,
            reader: FrameReader::new(),
            _endpoint: PhantomData,
        })
    }

    /// One request/response exchange. Frame-level failures become wire
    /// errors via [`crate::FrameError::to_wire_error`]; a top-level
    /// [`Response::Error`] becomes `Err` directly.
    fn call(&mut self, req: &Request<E>) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &encode_message(req)).map_err(|e| e.to_wire_error())?;
        let payload = read_frame_blocking(&mut self.reader, &mut self.stream)
            .map_err(|e| e.to_wire_error())?;
        let resp: Response = decode_message(&payload).map_err(|e| {
            WireError::protocol(ErrorCode::BadMessage, format!("undecodable response: {e}"))
        })?;
        match resp {
            Response::Error(e) => Err(e),
            other => Ok(other),
        }
    }

    fn call_ok(&mut self, req: &Request<E>, what: &'static str) -> Result<(), WireError> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(what, &other)),
        }
    }

    // ------------------------------------------------------------------
    // Health and stats
    // ------------------------------------------------------------------

    /// Confirms the server is alive and speaking this protocol version.
    pub fn health(&mut self) -> Result<(), WireError> {
        self.call_ok(&Request::Health, "Ok")
    }

    /// The serving backend's shape plus the daemon's counters.
    pub fn stats(&mut self) -> Result<ServerStats, WireError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Runs a batch of queries on the server's own draw stream; one
    /// result per query, in order — the remote form of `Client::run`.
    pub fn run(
        &mut self,
        queries: &[Query<E>],
    ) -> Result<Vec<Result<QueryOutput, WireError>>, WireError> {
        self.run_inner(None, queries)
    }

    /// Runs a batch on an explicit seed — the remote form of
    /// `Client::run_seeded`. The same seed, batch, and server state
    /// reproduce byte-identical results, in-process or over the wire.
    pub fn run_seeded(
        &mut self,
        queries: &[Query<E>],
        seed: u64,
    ) -> Result<Vec<Result<QueryOutput, WireError>>, WireError> {
        self.run_inner(Some(seed), queries)
    }

    fn run_inner(
        &mut self,
        seed: Option<u64>,
        queries: &[Query<E>],
    ) -> Result<Vec<Result<QueryOutput, WireError>>, WireError> {
        let req = Request::Run {
            seed,
            queries: queries.to_vec(),
        };
        match self.call(&req)? {
            Response::Run(results) => {
                if results.len() != queries.len() {
                    return Err(WireError::protocol(
                        ErrorCode::BadMessage,
                        format!(
                            "server answered {} results for {} queries",
                            results.len(),
                            queries.len()
                        ),
                    ));
                }
                Ok(results)
            }
            other => Err(unexpected("Run", &other)),
        }
    }

    /// Runs one query and unwraps its single result.
    fn one(&mut self, query: Query<E>) -> Result<QueryOutput, WireError> {
        let mut results = self.run(std::slice::from_ref(&query))?;
        results.pop().ok_or_else(|| {
            WireError::protocol(
                ErrorCode::BadMessage,
                "server answered 0 results for 1 query".to_string(),
            )
        })?
    }

    /// Counts intervals overlapping `q`.
    pub fn count(&mut self, q: Interval<E>) -> Result<usize, WireError> {
        match self.one(Query::Count { q })? {
            QueryOutput::Count(n) => Ok(n),
            other => Err(unexpected("Count", &Response::Run(vec![Ok(other)]))),
        }
    }

    /// Reports the ids of all intervals overlapping `q`.
    pub fn search(&mut self, q: Interval<E>) -> Result<Vec<ItemId>, WireError> {
        match self.one(Query::Search { q })? {
            QueryOutput::Ids(ids) => Ok(ids),
            other => Err(unexpected("Ids", &Response::Run(vec![Ok(other)]))),
        }
    }

    /// Reports the ids of all intervals containing the point `p`.
    pub fn stab(&mut self, p: E) -> Result<Vec<ItemId>, WireError> {
        match self.one(Query::Stab { p })? {
            QueryOutput::Ids(ids) => Ok(ids),
            other => Err(unexpected("Ids", &Response::Run(vec![Ok(other)]))),
        }
    }

    /// Draws `s` independent uniform samples from the intervals
    /// overlapping `q`, advancing the server's draw stream.
    pub fn sample(&mut self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, WireError> {
        match self.one(Query::Sample { q, s })? {
            QueryOutput::Samples(ids) => Ok(ids),
            other => Err(unexpected("Samples", &Response::Run(vec![Ok(other)]))),
        }
    }

    /// Draws `s` independent weighted samples (requires a weighted
    /// backend).
    pub fn sample_weighted(&mut self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, WireError> {
        match self.one(Query::SampleWeighted { q, s })? {
            QueryOutput::Samples(ids) => Ok(ids),
            other => Err(unexpected("Samples", &Response::Run(vec![Ok(other)]))),
        }
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// Applies a batch of mutations under the server's writer seat; one
    /// result per mutation, in order — the remote form of
    /// `ClientWriter::apply`.
    pub fn apply(
        &mut self,
        muts: &[Mutation<E>],
    ) -> Result<Vec<Result<UpdateOutput, WireError>>, WireError> {
        let req = Request::Apply {
            muts: muts.to_vec(),
        };
        match self.call(&req)? {
            Response::Apply(results) => {
                if results.len() != muts.len() {
                    return Err(WireError::protocol(
                        ErrorCode::BadMessage,
                        format!(
                            "server answered {} results for {} mutations",
                            results.len(),
                            muts.len()
                        ),
                    ));
                }
                Ok(results)
            }
            other => Err(unexpected("Apply", &other)),
        }
    }

    /// Applies one mutation and unwraps its single result.
    fn one_mut(&mut self, m: Mutation<E>) -> Result<UpdateOutput, WireError> {
        let mut results = self.apply(std::slice::from_ref(&m))?;
        results.pop().ok_or_else(|| {
            WireError::protocol(
                ErrorCode::BadMessage,
                "server answered 0 results for 1 mutation".to_string(),
            )
        })?
    }

    /// Inserts one interval; reports its engine-assigned global id.
    pub fn insert(&mut self, iv: Interval<E>) -> Result<ItemId, WireError> {
        match self.one_mut(Mutation::Insert { iv })? {
            UpdateOutput::Inserted(id) => Ok(id),
            other => Err(WireError::protocol(
                ErrorCode::BadMessage,
                format!("expected Inserted, got {other:?}"),
            )),
        }
    }

    /// Inserts one weighted interval (requires a weighted backend).
    pub fn insert_weighted(&mut self, iv: Interval<E>, weight: f64) -> Result<ItemId, WireError> {
        match self.one_mut(Mutation::InsertWeighted { iv, weight })? {
            UpdateOutput::Inserted(id) => Ok(id),
            other => Err(WireError::protocol(
                ErrorCode::BadMessage,
                format!("expected Inserted, got {other:?}"),
            )),
        }
    }

    /// Removes the interval with global id `id`.
    pub fn remove(&mut self, id: ItemId) -> Result<(), WireError> {
        match self.one_mut(Mutation::Delete { id })? {
            UpdateOutput::Removed => Ok(()),
            other => Err(WireError::protocol(
                ErrorCode::BadMessage,
                format!("expected Removed, got {other:?}"),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Snapshot administration
    // ------------------------------------------------------------------

    /// Saves the serving backend to `dir` on the **server's**
    /// filesystem.
    pub fn save(&mut self, dir: &str) -> Result<(), WireError> {
        self.call_ok(
            &Request::Save {
                dir: dir.to_string(),
            },
            "Ok",
        )
    }

    /// Reads a server-side snapshot directory's manifest without
    /// loading it.
    pub fn inspect_snapshot(&mut self, dir: &str) -> Result<SnapshotSummary, WireError> {
        let req = Request::InspectSnapshot {
            dir: dir.to_string(),
        };
        match self.call(&req)? {
            Response::Snapshot(info) => Ok(info),
            other => Err(unexpected("Snapshot", &other)),
        }
    }

    /// Replaces the serving backend with one loaded from a server-side
    /// snapshot directory.
    pub fn load(&mut self, dir: &str) -> Result<(), WireError> {
        self.call_ok(
            &Request::Load {
                dir: dir.to_string(),
            },
            "Ok",
        )
    }

    /// Asks the server to drain and exit. The `Ok` reply is sent before
    /// the server begins draining, so acked work is never lost.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        self.call_ok(&Request::Shutdown, "Ok")
    }

    // ------------------------------------------------------------------
    // Catalog administration (multi-tenant servers)
    // ------------------------------------------------------------------

    /// Unwraps the single-collection summary `CreateCollection` and
    /// `Reindex` answer with.
    fn one_summary(&mut self, req: &Request<E>) -> Result<CollectionSummary, WireError> {
        match self.call(req)? {
            Response::Collections(mut summaries) if summaries.len() == 1 => summaries
                .pop()
                .ok_or_else(|| unexpected("Collections[1]", &Response::Collections(Vec::new()))),
            other => Err(unexpected("Collections[1]", &other)),
        }
    }

    /// Creates an empty named collection on a catalog server; reports
    /// its post-create summary (including the kind the planner picked
    /// when `spec.kind` was `None`). Single-collection servers refuse
    /// with [`ErrorCode::CatalogNotServing`].
    pub fn create_collection(
        &mut self,
        spec: WireCollectionSpec,
    ) -> Result<CollectionSummary, WireError> {
        self.one_summary(&Request::CreateCollection { spec })
    }

    /// Drops a named collection and every interval in it.
    pub fn drop_collection(&mut self, name: &str) -> Result<(), WireError> {
        self.call_ok(
            &Request::DropCollection {
                name: name.to_string(),
            },
            "Ok",
        )
    }

    /// Describes every collection, sorted by name.
    pub fn list_collections(&mut self) -> Result<Vec<CollectionSummary>, WireError> {
        match self.call(&Request::ListCollections)? {
            Response::Collections(summaries) => Ok(summaries),
            other => Err(unexpected("Collections", &other)),
        }
    }

    /// Rebuilds a collection on a different index kind and atomically
    /// swaps it in; reports the post-swap summary. Global ids survive
    /// the swap.
    pub fn reindex(
        &mut self,
        collection: &str,
        kind: &str,
    ) -> Result<CollectionSummary, WireError> {
        self.one_summary(&Request::Reindex {
            collection: collection.to_string(),
            kind: kind.to_string(),
        })
    }

    /// Runs a batch of queries against a named collection on the
    /// collection's own draw stream.
    pub fn run_in(
        &mut self,
        collection: &str,
        queries: &[Query<E>],
    ) -> Result<Vec<Result<QueryOutput, WireError>>, WireError> {
        self.run_in_inner(collection, None, queries)
    }

    /// Runs a batch against a named collection on an explicit seed —
    /// the remote form of the catalog's `run_seeded_in`.
    pub fn run_seeded_in(
        &mut self,
        collection: &str,
        queries: &[Query<E>],
        seed: u64,
    ) -> Result<Vec<Result<QueryOutput, WireError>>, WireError> {
        self.run_in_inner(collection, Some(seed), queries)
    }

    fn run_in_inner(
        &mut self,
        collection: &str,
        seed: Option<u64>,
        queries: &[Query<E>],
    ) -> Result<Vec<Result<QueryOutput, WireError>>, WireError> {
        let req = Request::RunIn {
            collection: collection.to_string(),
            seed,
            queries: queries.to_vec(),
        };
        match self.call(&req)? {
            Response::Run(results) => {
                if results.len() != queries.len() {
                    return Err(WireError::protocol(
                        ErrorCode::BadMessage,
                        format!(
                            "server answered {} results for {} queries",
                            results.len(),
                            queries.len()
                        ),
                    ));
                }
                Ok(results)
            }
            other => Err(unexpected("Run", &other)),
        }
    }

    /// Applies a batch of mutations to a named collection under its
    /// writer seat. Ids in mutations and outputs are the collection's
    /// **global** ids, stable across re-indexes.
    pub fn apply_in(
        &mut self,
        collection: &str,
        muts: &[Mutation<E>],
    ) -> Result<Vec<Result<UpdateOutput, WireError>>, WireError> {
        let req = Request::ApplyIn {
            collection: collection.to_string(),
            muts: muts.to_vec(),
        };
        match self.call(&req)? {
            Response::Apply(results) => {
                if results.len() != muts.len() {
                    return Err(WireError::protocol(
                        ErrorCode::BadMessage,
                        format!(
                            "server answered {} results for {} mutations",
                            results.len(),
                            muts.len()
                        ),
                    ));
                }
                Ok(results)
            }
            other => Err(unexpected("Apply", &other)),
        }
    }

    /// Saves the whole catalog (every collection plus one manifest) to
    /// `dir` on the **server's** filesystem.
    pub fn save_catalog(&mut self, dir: &str) -> Result<(), WireError> {
        self.call_ok(
            &Request::SaveCatalog {
                dir: dir.to_string(),
            },
            "Ok",
        )
    }

    /// Replaces the serving catalog with one loaded from a server-side
    /// directory.
    pub fn load_catalog(&mut self, dir: &str) -> Result<(), WireError> {
        self.call_ok(
            &Request::LoadCatalog {
                dir: dir.to_string(),
            },
            "Ok",
        )
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// The server's replication role and log position (`role` is
    /// `"none"` on a server that keeps no log).
    pub fn replication_status(&mut self) -> Result<ReplicationStatus, WireError> {
        match self.call(&Request::ReplicationStatus)? {
            Response::Replication(status) => Ok(status),
            other => Err(unexpected("Replication", &other)),
        }
    }

    /// Promotes a following replica to primary; reports the
    /// post-promotion status. A server that is not a following replica
    /// refuses with [`ErrorCode::ReplicationNotReplica`].
    pub fn promote(&mut self) -> Result<ReplicationStatus, WireError> {
        match self.call(&Request::Promote)? {
            Response::Replication(status) => Ok(status),
            other => Err(unexpected("Replication", &other)),
        }
    }

    /// Fetches a consistent snapshot of the primary into the local
    /// directory `dir` (created if absent) — replica bootstrap's first
    /// step. Returns the status frame acked before the stream; its
    /// `last_seq` is the snapshot's checkpoint, so replay continues at
    /// `last_seq + 1`. Chunk paths are validated: a hostile peer cannot
    /// write outside `dir`.
    pub fn fetch_snapshot(&mut self, dir: &Path) -> Result<ReplicationStatus, WireError> {
        let ack = match self.call(&Request::FetchSnapshot)? {
            Response::Replication(status) => status,
            other => return Err(unexpected("Replication", &other)),
        };
        std::fs::create_dir_all(dir).map_err(|e| io_wire(dir, &e))?;
        loop {
            let payload = read_frame_blocking(&mut self.reader, &mut self.stream)
                .map_err(|e| e.to_wire_error())?;
            let resp: Response = decode_message(&payload).map_err(|e| {
                WireError::protocol(ErrorCode::BadMessage, format!("undecodable response: {e}"))
            })?;
            match resp {
                Response::SnapshotChunk(chunk) => write_chunk(dir, &chunk)?,
                Response::Ok => return Ok(ack),
                Response::Error(e) => return Err(e),
                other => return Err(unexpected("SnapshotChunk", &other)),
            }
        }
    }

    /// Subscribes this connection to the primary's write-ahead log from
    /// `from_seq`, converting it into a [`LogStream`] of pushed
    /// records. The server refuses on a non-primary
    /// ([`ErrorCode::ReplicationNotPrimary`]) and when `from_seq`
    /// predates its log ([`ErrorCode::ReplicationStaleSubscribe`]).
    pub fn subscribe(mut self, from_seq: u64) -> Result<LogStream<E>, WireError> {
        let ack = match self.call(&Request::Subscribe { from_seq })? {
            Response::Replication(status) => status,
            other => return Err(unexpected("Replication", &other)),
        };
        Ok(LogStream {
            stream: self.stream,
            reader: self.reader,
            ack,
            next_seq: from_seq,
            _endpoint: PhantomData,
        })
    }
}

fn io_wire(path: &Path, e: &io::Error) -> WireError {
    WireError::from(&PersistError::io(path, e))
}

/// Refuses chunk paths that could escape the bootstrap directory
/// (absolute paths, `..`, drive/root components).
fn sanitize_chunk_path(dir: &Path, rel: &str) -> Result<PathBuf, WireError> {
    let p = Path::new(rel);
    let escapes = rel.is_empty()
        || p.components()
            .any(|c| !matches!(c, Component::Normal(_) | Component::CurDir));
    if escapes {
        return Err(WireError::protocol(
            ErrorCode::BadMessage,
            format!("snapshot chunk path `{rel}` escapes the bootstrap directory"),
        ));
    }
    Ok(dir.join(p))
}

fn write_chunk(dir: &Path, chunk: &SnapshotChunk) -> Result<(), WireError> {
    use std::io::{Seek as _, Write as _};
    let path = sanitize_chunk_path(dir, &chunk.path)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| io_wire(parent, &e))?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&path)
        .map_err(|e| io_wire(&path, &e))?;
    file.seek(std::io::SeekFrom::Start(chunk.offset))
        .and_then(|_| file.write_all(&chunk.bytes))
        .and_then(|()| file.sync_all())
        .map_err(|e| io_wire(&path, &e))
}

/// A subscribed connection: the push stream of write-ahead-log records
/// a [`RemoteClient::subscribe`] call turns into. Sequence continuity
/// is verified on every pushed record, so a reordering (or skipping)
/// peer surfaces as a typed error, never as silent divergence.
#[derive(Debug)]
pub struct LogStream<E> {
    stream: TcpStream,
    reader: FrameReader,
    ack: ReplicationStatus,
    next_seq: u64,
    _endpoint: PhantomData<fn() -> E>,
}

impl<E: GridEndpoint> LogStream<E> {
    /// The status frame the server acked the subscription with.
    pub fn ack(&self) -> &ReplicationStatus {
        &self.ack
    }

    /// The sequence number the next pushed record must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Collects records pushed within `timeout` (an empty vector when
    /// the tick elapses quietly); `Ok(None)` when the primary closed
    /// the stream (drained or died) and a reconnect is needed.
    pub fn poll(&mut self, timeout: Duration) -> Result<Option<Vec<LogRecordFrame>>, WireError> {
        let timeout = timeout.max(Duration::from_millis(1));
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| WireError::protocol(ErrorCode::Internal, e.to_string()))?;
        let mut out = Vec::new();
        loop {
            match self.reader.read_event(&mut self.stream) {
                Ok(ReadEvent::Frame(payload)) => {
                    let resp: Response = decode_message(&payload).map_err(|e| {
                        WireError::protocol(
                            ErrorCode::BadMessage,
                            format!("undecodable response: {e}"),
                        )
                    })?;
                    match resp {
                        Response::LogRecord(frame) => {
                            if frame.seq != self.next_seq {
                                return Err(WireError::protocol(
                                    ErrorCode::ReplicationOutOfOrder,
                                    format!(
                                        "log stream sequence out of order: expected {}, got {}",
                                        self.next_seq, frame.seq
                                    ),
                                ));
                            }
                            self.next_seq = self.next_seq.saturating_add(1);
                            out.push(frame);
                        }
                        Response::Error(e) => return Err(e),
                        other => return Err(unexpected("LogRecord", &other)),
                    }
                }
                Ok(ReadEvent::Timeout { .. }) => break,
                Ok(ReadEvent::Eof) => {
                    return if out.is_empty() {
                        Ok(None)
                    } else {
                        Ok(Some(out))
                    };
                }
                Err(e) => return Err(e.to_wire_error()),
            }
        }
        Ok(Some(out))
    }
}
