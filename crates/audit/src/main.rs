//! CI entry point for the workspace auditor.
//!
//! Exit codes: `0` clean, `1` violations found (one `file:line: [rule]
//! message` diagnostic per line on stdout), `2` the audit itself could
//! not run (bad flags, unreadable tree, extraction failure).

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
irs-audit — dependency-free workspace auditor

USAGE:
    irs-audit [--root <dir>] [--print-registry]

OPTIONS:
    --root <dir>        Workspace root to audit (default: auto-detect)
    --print-registry    Print the current contract registry extracted
                        from source, in contracts/registry.txt format,
                        instead of auditing
    -h, --help          Show this help
";

/// The workspace root: the current directory when it looks like one
/// (has `Cargo.toml` and `crates/`), else the root this binary was
/// compiled in — so both `cargo run -p irs-audit` and a bare
/// `target/release/irs-audit` from anywhere do the right thing.
fn default_root() -> PathBuf {
    if let Ok(cwd) = std::env::current_dir() {
        if cwd.join("Cargo.toml").is_file() && cwd.join("crates").is_dir() {
            return cwd;
        }
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut print_registry = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--print-registry" => print_registry = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("irs-audit: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("irs-audit: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    if print_registry {
        return match irs_audit::extract_registry(&root) {
            Ok(entries) => {
                print!("{}", irs_audit::render_registry(&entries));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("irs-audit: {e}");
                ExitCode::from(2)
            }
        };
    }

    match irs_audit::audit_workspace(&root) {
        Ok(report) if report.violations.is_empty() => {
            eprintln!(
                "irs-audit: clean ({} files scanned, {} pragma(s) honored)",
                report.files_scanned, report.pragmas_honored
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            eprintln!(
                "irs-audit: {} violation(s) in {} scanned file(s)",
                report.violations.len(),
                report.files_scanned
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("irs-audit: {e}");
            ExitCode::from(2)
        }
    }
}
