//! # irs-audit — the workspace's conventions, machine-checked
//!
//! A dependency-free static analyzer that turns the repository's
//! safety conventions into enforced contracts. It is deliberately *not*
//! a compiler plugin: the build environment is offline (no `syn`, no
//! clippy lints-as-a-library), so the auditor scans workspace sources
//! with a small hand-rolled line/token scanner — comments, string
//! literals, character literals, and `#[cfg(test)]` regions are
//! understood well enough that rules fire only on reachable production
//! code.
//!
//! ## Rule families
//!
//! | Rule | What it enforces | Where |
//! |---|---|---|
//! | `no-panic` | no `.unwrap()` / `.expect(..)` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` | decode, wire-framing, server-connection, and engine paths |
//! | `no-index` | no direct slice indexing `x[..]` (use `.get(..)` and a typed error) | byte-decode paths and every `impl Codec for` block |
//! | `lock-discipline` | every `.read()` / `.write()` / `.lock()` recovers from poisoning (`.unwrap_or_else(\|e\| e.into_inner())` or an explicit match), never bare `.unwrap()` | engine, server, catalog, client |
//! | `crate-hygiene` | every workspace library crate carries `#![deny(missing_docs)]` | all `crates/*/src/lib.rs` + the root crate |
//! | `registry` | wire error codes, request/response tags, snapshot role bytes, and the snapshot format version are **append-only**: each is pinned in `contracts/registry.txt`, and renumbering / renaming / removing any pinned entry fails the audit | `contracts/registry.txt` vs. source |
//! | `pragma` | every waiver is well-formed, names a real rule, carries a reason, and still suppresses something (stale pragmas fail) | everywhere |
//!
//! ## Waivers
//!
//! A vetted site is waived with a pragma on the same line or the line
//! directly above:
//!
//! ```text
//! // audit: allow(no-panic): length checked two lines above; slice cannot be short
//! let magic: [u8; 4] = buf[..4].try_into().expect("4-byte slice");
//! ```
//!
//! The reason is mandatory, the rule name must be one of `no-panic`,
//! `no-index`, or `lock-discipline` (the other families cannot be
//! waived), and a pragma that no longer suppresses a violation is
//! itself a violation — so waivers cannot outlive the code they
//! excused.
//!
//! ## Entry points
//!
//! [`audit_workspace`] runs every rule against a workspace tree and
//! returns an [`AuditReport`]; the `irs-audit` binary wraps it for CI
//! (exit 0 clean, exit 1 with one `file:line: [rule] message` diagnostic
//! per violation). [`extract_registry`] reads the current contract
//! values out of source — `irs-audit --print-registry` uses it to
//! (re)generate `contracts/registry.txt` when a new entry is appended.

#![deny(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Workspace-relative path of the committed contract registry.
pub const REGISTRY_PATH: &str = "contracts/registry.txt";

/// Source file the `ErrorCode` enum (wire error codes) is extracted
/// from.
pub const ERROR_CODE_SOURCE: &str = "crates/core/src/wire.rs";

/// Source file the wire request/response tags are extracted from.
pub const WIRE_TAG_SOURCE: &str = "crates/wire/src/message.rs";

/// Source file the snapshot role bytes and format version are
/// extracted from.
pub const SNAPSHOT_SOURCE: &str = "crates/core/src/persist.rs";

/// Files whose whole body must be panic-free (`no-panic`): the
/// byte-decode layer, the wire framing and message vocabulary, the
/// remote client, the server connection loop, the engine's
/// query/persist paths, the sampling primitives, and the index
/// structures' query paths. `impl Codec for` blocks anywhere in the
/// workspace are covered in addition to this list.
pub const NO_PANIC_FILES: &[&str] = &[
    "crates/core/src/persist.rs",
    "crates/core/src/wal.rs",
    "crates/core/src/wire.rs",
    "crates/wire/src/frame.rs",
    "crates/wire/src/message.rs",
    "crates/wire/src/client.rs",
    "crates/server/src/lib.rs",
    "crates/engine/src/engine.rs",
    "crates/engine/src/query.rs",
    "crates/engine/src/persist.rs",
    "crates/sampling/src/alias.rs",
    "crates/sampling/src/cumsum.rs",
    "crates/sampling/src/eytzinger.rs",
    "crates/ait/src/ait.rs",
    "crates/ait/src/awit.rs",
    "crates/ait/src/aitv.rs",
    "crates/ait/src/records.rs",
    "crates/kds/src/tree.rs",
];

/// Files whose whole body must avoid direct slice indexing
/// (`no-index`): the paths that parse untrusted bytes. `impl Codec
/// for` blocks anywhere are covered in addition.
pub const NO_INDEX_FILES: &[&str] = &[
    "crates/core/src/persist.rs",
    "crates/core/src/wal.rs",
    "crates/core/src/wire.rs",
    "crates/wire/src/frame.rs",
    "crates/wire/src/message.rs",
];

/// Directories whose sources must follow the poisoned-lock recovery
/// discipline (`lock-discipline`).
pub const LOCK_DISCIPLINE_DIRS: &[&str] = &[
    "crates/engine/src",
    "crates/server/src",
    "crates/catalog/src",
    "crates/client/src",
];

// ---------------------------------------------------------------------
// Rules, violations, errors
// ---------------------------------------------------------------------

/// One enforced rule family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!`-family macros on audited paths.
    NoPanic,
    /// No direct slice indexing on byte-decode paths.
    NoIndex,
    /// Poisoned-lock recovery on every `read()`/`write()`/`lock()`.
    LockDiscipline,
    /// `#![deny(missing_docs)]` on every workspace library crate.
    CrateHygiene,
    /// Append-only wire/snapshot registries pinned in
    /// `contracts/registry.txt`.
    Registry,
    /// Pragma grammar: well-formed, reasoned, and not stale.
    Pragma,
}

impl Rule {
    /// The rule's stable kebab-case name, as used in pragmas and
    /// diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoIndex => "no-index",
            Rule::LockDiscipline => "lock-discipline",
            Rule::CrateHygiene => "crate-hygiene",
            Rule::Registry => "registry",
            Rule::Pragma => "pragma",
        }
    }

    /// Parses a stable rule name.
    pub fn parse(name: &str) -> Option<Rule> {
        match name {
            "no-panic" => Some(Rule::NoPanic),
            "no-index" => Some(Rule::NoIndex),
            "lock-discipline" => Some(Rule::LockDiscipline),
            "crate-hygiene" => Some(Rule::CrateHygiene),
            "registry" => Some(Rule::Registry),
            "pragma" => Some(Rule::Pragma),
            _ => None,
        }
    }

    /// Whether a pragma may waive this rule. Registry, hygiene, and
    /// pragma violations cannot be excused — they are repairs, not
    /// judgment calls.
    pub fn allowable(self) -> bool {
        matches!(self, Rule::NoPanic | Rule::NoIndex | Rule::LockDiscipline)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a rule violated at a specific line of a specific file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What was found and how to fix it, in one sentence.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Why the audit itself could not run (as opposed to finding
/// violations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// A file or directory could not be read.
    Io {
        /// The path the operation targeted.
        path: String,
        /// The OS error kind.
        kind: std::io::ErrorKind,
    },
    /// A registry source file no longer contains the construct the
    /// extractor reads (the enum or constants moved or were renamed) —
    /// the auditor's own configuration must be updated alongside.
    ExtractionFailed {
        /// The file scanned.
        path: String,
        /// What was expected there.
        what: &'static str,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Io { path, kind } => write!(f, "i/o error on `{path}`: {kind}"),
            AuditError::ExtractionFailed { path, what } => {
                write!(
                    f,
                    "cannot extract {what} from `{path}`: construct not found"
                )
            }
        }
    }
}

impl std::error::Error for AuditError {}

fn io_err(path: &Path, e: &std::io::Error) -> AuditError {
    AuditError::Io {
        path: path.display().to_string(),
        kind: e.kind(),
    }
}

/// What [`audit_workspace`] returns: every violation (empty = clean)
/// plus scan statistics.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// All findings, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Rust sources scanned.
    pub files_scanned: usize,
    /// Pragmas that waived at least one violation.
    pub pragmas_honored: usize,
}

// ---------------------------------------------------------------------
// Lexing: comments, strings, char literals, cfg(test) regions
// ---------------------------------------------------------------------

/// A source file split into per-line code and comment channels. The
/// code channel has comment bodies and string/char-literal contents
/// blanked to spaces (delimiters kept), so token rules cannot fire on
/// prose; the comment channel carries comment text for pragma parsing.
/// Column positions are preserved in both channels.
#[derive(Debug)]
struct Lexed {
    code: Vec<String>,
    comment: Vec<String>,
    in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    CharLit,
}

impl Lexed {
    fn new(content: &str) -> Lexed {
        let mut code: Vec<String> = Vec::new();
        let mut comment: Vec<String> = Vec::new();
        let mut state = LexState::Code;
        for raw in content.lines() {
            let chars: Vec<char> = raw.chars().collect();
            let mut code_line = String::with_capacity(chars.len());
            let mut comment_line = String::with_capacity(chars.len());
            let mut i = 0;
            // A line comment never spans lines.
            if state == LexState::LineComment {
                state = LexState::Code;
            }
            while i < chars.len() {
                let c = chars[i];
                let next = chars.get(i + 1).copied();
                match state {
                    LexState::Code => match c {
                        '/' if next == Some('/') => {
                            state = LexState::LineComment;
                            code_line.push(' ');
                            comment_line.push(c);
                        }
                        '/' if next == Some('*') => {
                            state = LexState::BlockComment(1);
                            code_line.push_str("  ");
                            comment_line.push_str("/*");
                            i += 1;
                        }
                        '"' => {
                            state = LexState::Str;
                            code_line.push('"');
                            comment_line.push(' ');
                        }
                        'r' | 'b' => {
                            // Possible raw/byte string: r", r#", br", b".
                            let mut j = i + 1;
                            if c == 'b' && chars.get(j) == Some(&'r') {
                                j += 1;
                            }
                            let mut hashes = 0u8;
                            while chars.get(j) == Some(&'#') {
                                hashes += 1;
                                j += 1;
                            }
                            let is_raw = (c == 'r' || chars.get(i + 1) == Some(&'r'))
                                && chars.get(j) == Some(&'"');
                            let is_byte_str =
                                c == 'b' && hashes == 0 && chars.get(i + 1) == Some(&'"');
                            // Only when an identifier is not already in
                            // progress (e.g. `for` ends in 'r').
                            let fresh = i == 0 || !is_ident_char(chars[i - 1]);
                            if fresh && (is_raw || is_byte_str) {
                                for &ch in &chars[i..=j] {
                                    code_line.push(ch);
                                    comment_line.push(' ');
                                }
                                state = if is_byte_str {
                                    LexState::Str
                                } else {
                                    LexState::RawStr(hashes)
                                };
                                i = j;
                            } else {
                                code_line.push(c);
                                comment_line.push(' ');
                            }
                        }
                        '\'' => {
                            // Char literal vs. lifetime: '\x' and 'c'
                            // (third char is the closing quote) are
                            // literals; anything else is a lifetime.
                            let is_char = next == Some('\\')
                                || (chars.get(i + 2) == Some(&'\'')
                                    && !(i > 0 && is_ident_char(chars[i - 1]) && next.is_none()));
                            if is_char {
                                state = LexState::CharLit;
                            }
                            code_line.push('\'');
                            comment_line.push(' ');
                        }
                        _ => {
                            code_line.push(c);
                            comment_line.push(' ');
                        }
                    },
                    LexState::LineComment => {
                        code_line.push(' ');
                        comment_line.push(c);
                    }
                    LexState::BlockComment(depth) => {
                        if c == '*' && next == Some('/') {
                            code_line.push_str("  ");
                            comment_line.push_str("*/");
                            i += 1;
                            state = if depth == 1 {
                                LexState::Code
                            } else {
                                LexState::BlockComment(depth - 1)
                            };
                        } else if c == '/' && next == Some('*') {
                            code_line.push_str("  ");
                            comment_line.push_str("/*");
                            i += 1;
                            state = LexState::BlockComment(depth + 1);
                        } else {
                            code_line.push(' ');
                            comment_line.push(c);
                        }
                    }
                    LexState::Str => {
                        comment_line.push(' ');
                        match c {
                            '\\' => {
                                code_line.push(' ');
                                if next.is_some() {
                                    code_line.push(' ');
                                    comment_line.push(' ');
                                    i += 1;
                                }
                            }
                            '"' => {
                                code_line.push('"');
                                state = LexState::Code;
                            }
                            _ => code_line.push(' '),
                        }
                    }
                    LexState::RawStr(hashes) => {
                        comment_line.push(' ');
                        let closes = c == '"'
                            && (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                        if closes {
                            code_line.push('"');
                            for _ in 0..hashes {
                                code_line.push('#');
                                comment_line.push(' ');
                            }
                            i += hashes as usize;
                            state = LexState::Code;
                        } else {
                            code_line.push(' ');
                        }
                    }
                    LexState::CharLit => {
                        comment_line.push(' ');
                        match c {
                            '\\' => {
                                code_line.push(' ');
                                if next.is_some() {
                                    code_line.push(' ');
                                    comment_line.push(' ');
                                    i += 1;
                                }
                            }
                            '\'' => {
                                code_line.push('\'');
                                state = LexState::Code;
                            }
                            _ => code_line.push(' '),
                        }
                    }
                }
                i += 1;
            }
            code.push(code_line);
            comment.push(comment_line);
        }
        let in_test = vec![false; code.len()];
        let mut lexed = Lexed {
            code,
            comment,
            in_test,
        };
        lexed.mark_test_regions();
        lexed
    }

    /// Marks every line belonging to a `#[cfg(test)]`-gated item (the
    /// attribute line through the item's closing brace or semicolon) so
    /// rules skip test-only code.
    fn mark_test_regions(&mut self) {
        let mut line = 0;
        while line < self.code.len() {
            let code = &self.code[line];
            let is_gate = code.contains("#[") && code.contains("cfg(test");
            if !is_gate {
                line += 1;
                continue;
            }
            // Walk forward from the attribute to the end of the item it
            // gates: the matching close of the first `{`, or a `;`
            // (for gated use/const items), whichever comes first.
            let mut depth = 0usize;
            let mut opened = false;
            let mut l = line;
            // Skip past the attribute's own brackets by starting the
            // scan after `]` of this attr: simplest is to scan from the
            // next line for `{`/`;` — attributes with inline items on
            // the same line are not used in this workspace.
            'outer: while l < self.code.len() {
                let start_col = if l == line {
                    match self.code[l].find(']') {
                        Some(c) => c + 1,
                        None => self.code[l].len(),
                    }
                } else {
                    0
                };
                for c in self.code[l][start_col..].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'outer;
                            }
                        }
                        ';' if !opened => break 'outer,
                        _ => {}
                    }
                }
                l += 1;
            }
            let end = l.min(self.code.len() - 1);
            for t in &mut self.in_test[line..=end] {
                *t = true;
            }
            line = end + 1;
        }
    }

    /// The file's code with all whitespace removed, excluding
    /// `#[cfg(test)]` regions, with a byte→line map for diagnostics.
    fn stream(&self) -> Stream {
        let mut chars = Vec::new();
        let mut line_of = Vec::new();
        for (idx, code) in self.code.iter().enumerate() {
            if self.in_test[idx] {
                continue;
            }
            for c in code.chars() {
                if !c.is_whitespace() {
                    chars.push(c);
                    line_of.push(idx);
                }
            }
        }
        Stream { chars, line_of }
    }

    /// Like [`Lexed::stream`] but with whitespace runs (including line
    /// breaks) collapsed to a single space — keyword boundaries stay
    /// visible, so `impl Codec for` is distinguishable from an
    /// identifier like `implCodec`.
    fn stream_spaced(&self) -> Stream {
        let mut chars: Vec<char> = Vec::new();
        let mut line_of = Vec::new();
        for (idx, code) in self.code.iter().enumerate() {
            if self.in_test[idx] {
                continue;
            }
            for c in code.chars().chain(std::iter::once('\n')) {
                if c.is_whitespace() {
                    if chars.last().is_some_and(|&last| last != ' ') {
                        chars.push(' ');
                        line_of.push(idx);
                    }
                } else {
                    chars.push(c);
                    line_of.push(idx);
                }
            }
        }
        Stream { chars, line_of }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whitespace-free code stream with a char→line map.
struct Stream {
    chars: Vec<char>,
    line_of: Vec<usize>,
}

impl Stream {
    /// All positions where `pattern` occurs.
    fn find_all(&self, pattern: &str) -> Vec<usize> {
        let pat: Vec<char> = pattern.chars().collect();
        let mut out = Vec::new();
        if pat.is_empty() || self.chars.len() < pat.len() {
            return out;
        }
        for (start, window) in self.chars.windows(pat.len()).enumerate() {
            if window == pat.as_slice() {
                out.push(start);
            }
        }
        out
    }

    fn line(&self, pos: usize) -> usize {
        self.line_of.get(pos).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------

#[derive(Debug)]
struct PragmaSite {
    line: usize, // 0-based
    rule: Rule,
    used: bool,
}

/// Parses `// audit: allow(<rule>): <reason>` pragmas out of the
/// comment channel. Malformed pragmas are violations immediately;
/// well-formed ones are returned for suppression matching.
fn collect_pragmas(file: &str, lexed: &Lexed, violations: &mut Vec<Violation>) -> Vec<PragmaSite> {
    let mut pragmas = Vec::new();
    for (idx, comment) in lexed.comment.iter().enumerate() {
        let Some(at) = comment.find("audit:") else {
            continue;
        };
        // Pragmas live in plain `//` comments only. Doc comments
        // (`///`, `//!`) are prose — DESIGN.md and module docs quote
        // the pragma grammar without triggering it.
        let lead = comment.trim_start();
        if !lead.starts_with("//") || lead.starts_with("///") || lead.starts_with("//!") {
            continue;
        }
        if lexed.in_test[idx] {
            // Pragmas in test code gate nothing (rules skip tests);
            // flag them so they cannot accumulate as dead weight.
            violations.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: Rule::Pragma,
                message: "audit pragma inside #[cfg(test)] code has no effect; remove it"
                    .to_string(),
            });
            continue;
        }
        let rest = comment[at + "audit:".len()..].trim_start();
        let mut bad = |message: String| {
            violations.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: Rule::Pragma,
                message,
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            bad(format!(
                "malformed audit pragma (expected `audit: allow(<rule>): <reason>`), found `{}`",
                rest.trim_end()
            ));
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("audit pragma is missing the closing `)` after the rule name".to_string());
            continue;
        };
        let rule_name = args[..close].trim();
        let Some(rule) = Rule::parse(rule_name) else {
            bad(format!("audit pragma names unknown rule `{rule_name}`"));
            continue;
        };
        if !rule.allowable() {
            bad(format!(
                "rule `{rule_name}` cannot be waived by pragma; fix the violation instead"
            ));
            continue;
        }
        let after = args[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad(format!(
                "audit pragma `allow({rule_name})` requires a reason: `audit: allow({rule_name}): <why this site is safe>`"
            ));
            continue;
        }
        pragmas.push(PragmaSite {
            line: idx,
            rule,
            used: false,
        });
    }
    pragmas
}

/// Applies pragma suppression: a violation of rule R at line L is
/// waived by an `allow(R)` pragma on line L or L−1. Returns the
/// surviving violations and the number of pragmas that earned their
/// keep; stale pragmas become violations.
fn apply_pragmas(
    file: &str,
    raw: Vec<Violation>,
    mut pragmas: Vec<PragmaSite>,
    violations: &mut Vec<Violation>,
) -> usize {
    for v in raw {
        let line0 = v.line - 1;
        let waived = pragmas
            .iter_mut()
            .find(|p| p.rule == v.rule && (p.line == line0 || p.line + 1 == line0));
        match waived {
            Some(p) => p.used = true,
            None => violations.push(v),
        }
    }
    let mut honored = 0;
    for p in pragmas {
        if p.used {
            honored += 1;
        } else {
            violations.push(Violation {
                file: file.to_string(),
                line: p.line + 1,
                rule: Rule::Pragma,
                message: format!(
                    "stale pragma: `allow({})` no longer suppresses any violation; remove it",
                    p.rule
                ),
            });
        }
    }
    honored
}

// ---------------------------------------------------------------------
// Token rules
// ---------------------------------------------------------------------

/// `(whitespace-free pattern, diagnostic label)` pairs for `no-panic`.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()`"),
    (".expect(", "`.expect(..)`"),
    ("panic!(", "`panic!`"),
    ("unreachable!(", "`unreachable!`"),
    ("todo!(", "`todo!`"),
    ("unimplemented!(", "`unimplemented!`"),
];

/// Bare-unwrap patterns for `lock-discipline`.
const LOCK_PATTERNS: &[(&str, &str)] = &[
    (".read().unwrap()", "`.read().unwrap()`"),
    (".write().unwrap()", "`.write().unwrap()`"),
    (".lock().unwrap()", "`.lock().unwrap()`"),
    (".read().expect(", "`.read().expect(..)`"),
    (".write().expect(", "`.write().expect(..)`"),
    (".lock().expect(", "`.lock().expect(..)`"),
];

fn scan_no_panic(file: &str, stream: &Stream, mask: Option<&[bool]>) -> Vec<Violation> {
    let mut out = Vec::new();
    for &(pattern, label) in PANIC_PATTERNS {
        for pos in stream.find_all(pattern) {
            let line = stream.line(pos);
            if let Some(mask) = mask {
                if !mask.get(line).copied().unwrap_or(false) {
                    continue;
                }
            }
            if pattern.starts_with(is_ident_char) {
                // Macro patterns must not fire mid-identifier
                // (`my_panic!` is someone else's macro).
                if pos > 0 && is_ident_char(stream.chars[pos - 1]) {
                    continue;
                }
            }
            out.push(Violation {
                file: file.to_string(),
                line: line + 1,
                rule: Rule::NoPanic,
                message: format!(
                    "{label} on a panic-free path; return a typed error, or waive a proven-infallible site with `// audit: allow(no-panic): <reason>`"
                ),
            });
        }
    }
    out
}

fn scan_no_index(file: &str, lexed: &Lexed, mask: Option<&[bool]>) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, code) in lexed.code.iter().enumerate() {
        if lexed.in_test[idx] {
            continue;
        }
        if let Some(mask) = mask {
            if !mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
        }
        let chars: Vec<char> = code.chars().collect();
        for (col, &c) in chars.iter().enumerate() {
            if c != '[' || col == 0 {
                continue;
            }
            // Indexing is written with no space before the bracket; a
            // preceding value-producing token (identifier, call, prior
            // index, `?`) makes this `expr[..]`. `#[attr]`, `![`,
            // `vec![`, slice types `&[T]`, and array literals all have
            // a non-value char before the bracket.
            let prev = chars[col - 1];
            if is_ident_char(prev) || prev == ')' || prev == ']' || prev == '?' {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: Rule::NoIndex,
                    message: "direct slice indexing on a byte-decode path; use `.get(..)` with a typed error, or waive a bounds-proven site with `// audit: allow(no-index): <reason>`".to_string(),
                });
                break; // one finding per line keeps diagnostics readable
            }
        }
    }
    out
}

fn scan_lock_discipline(file: &str, stream: &Stream) -> Vec<Violation> {
    let mut out = Vec::new();
    for &(pattern, label) in LOCK_PATTERNS {
        for pos in stream.find_all(pattern) {
            out.push(Violation {
                file: file.to_string(),
                line: stream.line(pos) + 1,
                rule: Rule::LockDiscipline,
                message: format!(
                    "{label} discards the poisoned-lock recovery path; use `.unwrap_or_else(|e| e.into_inner())` or match the `PoisonError` explicitly"
                ),
            });
        }
    }
    out
}

/// Lines covered by `impl .. Codec for ..` blocks: decode paths that
/// live next to each index structure's definition.
fn codec_region_mask(lexed: &Lexed) -> Vec<bool> {
    let stream = lexed.stream_spaced();
    let mut mask = vec![false; lexed.code.len()];
    for impl_pos in stream.find_all("impl") {
        if impl_pos > 0 && is_ident_char(stream.chars[impl_pos - 1]) {
            continue; // mid-identifier (`simplify`)
        }
        match stream.chars.get(impl_pos + 4) {
            Some(&c) if c == ' ' || c == '<' => {}
            _ => continue, // `implicit…` or truncated input
        }
        // The impl header runs to its opening `{`; the block is a
        // Codec impl when the header names the trait.
        let Some(open_rel) = stream.chars[impl_pos..].iter().position(|&c| c == '{') else {
            continue;
        };
        let open = impl_pos + open_rel;
        let header: String = stream.chars[impl_pos..open].iter().collect();
        let Some(codec_at) = header.find("Codec for ") else {
            continue;
        };
        // `Codec` must be a whole path segment (`persist::Codec for`
        // is fine; `MyCodec for` is a different trait).
        if codec_at > 0 && is_ident_char(header.as_bytes()[codec_at - 1] as char) {
            continue;
        }
        let mut depth = 0usize;
        let mut end = open;
        for (k, &c) in stream.chars[open..].iter().enumerate() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let first = stream.line(impl_pos);
        let last = stream.line(end).min(mask.len() - 1);
        for m in &mut mask[first..=last] {
            *m = true;
        }
    }
    mask
}

// ---------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------

/// One pinned contract value: a named constant in an append-only
/// family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryEntry {
    /// The family: `error-code`, `request-tag`, `response-tag`,
    /// `snapshot-role`, or `format-version`.
    pub family: &'static str,
    /// The stable name (enum variant or constant).
    pub name: String,
    /// The numeric value.
    pub value: u64,
    /// Source file the entry was extracted from (diagnostics).
    pub file: String,
    /// 1-based source line (diagnostics).
    pub line: usize,
}

impl fmt::Display for RegistryEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} = {}", self.family, self.name, self.value)
    }
}

fn parse_number(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        s.replace('_', "").parse().ok()
    }
}

/// Extracts `Variant = N,` rows from the `pub enum ErrorCode` block.
fn extract_error_codes(rel: &str, lexed: &Lexed) -> Result<Vec<RegistryEntry>, AuditError> {
    let Some(start) = lexed
        .code
        .iter()
        .position(|l| l.contains("pub enum ErrorCode"))
    else {
        return Err(AuditError::ExtractionFailed {
            path: rel.to_string(),
            what: "`pub enum ErrorCode`",
        });
    };
    let mut out = Vec::new();
    let mut depth = 0usize;
    for (idx, code) in lexed.code.iter().enumerate().skip(start) {
        let trimmed = code.trim();
        if depth == 1 {
            if let Some(body) = trimmed.strip_suffix(',') {
                if let Some((name, value)) = body.split_once('=') {
                    let name = name.trim();
                    if !name.is_empty()
                        && name.chars().all(is_ident_char)
                        && name.starts_with(|c: char| c.is_ascii_uppercase())
                    {
                        if let Some(value) = parse_number(value) {
                            out.push(RegistryEntry {
                                family: "error-code",
                                name: name.to_string(),
                                value,
                                file: rel.to_string(),
                                line: idx + 1,
                            });
                        }
                    }
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 && idx > start {
                        if out.is_empty() {
                            return Err(AuditError::ExtractionFailed {
                                path: rel.to_string(),
                                what: "discriminants in `pub enum ErrorCode`",
                            });
                        }
                        return Ok(out);
                    }
                }
                _ => {}
            }
        }
    }
    Ok(out)
}

/// Extracts `const <PREFIX>NAME: u8 = N;` constants (wire tags,
/// snapshot roles).
fn extract_consts(
    rel: &str,
    lexed: &Lexed,
    prefix: &str,
    family: &'static str,
) -> Vec<RegistryEntry> {
    let mut out = Vec::new();
    for (idx, code) in lexed.code.iter().enumerate() {
        if lexed.in_test[idx] {
            continue;
        }
        let trimmed = code.trim().trim_start_matches("pub ");
        let Some(rest) = trimmed.strip_prefix("const ") else {
            continue;
        };
        if !rest.starts_with(prefix) {
            continue;
        }
        let Some((decl, value)) = rest.split_once('=') else {
            continue;
        };
        let Some((name, _ty)) = decl.split_once(':') else {
            continue;
        };
        let value = value.trim().trim_end_matches(';');
        if let Some(value) = parse_number(value) {
            out.push(RegistryEntry {
                family,
                name: name.trim().to_string(),
                value,
                file: rel.to_string(),
                line: idx + 1,
            });
        }
    }
    out
}

/// Reads every contract value out of the workspace sources: wire error
/// codes, request/response tags, snapshot role bytes, and the snapshot
/// format version.
pub fn extract_registry(root: &Path) -> Result<Vec<RegistryEntry>, AuditError> {
    let read = |rel: &str| -> Result<Lexed, AuditError> {
        let path = root.join(rel);
        let content = std::fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
        Ok(Lexed::new(&content))
    };

    let mut entries = Vec::new();

    let wire = read(ERROR_CODE_SOURCE)?;
    entries.extend(extract_error_codes(ERROR_CODE_SOURCE, &wire)?);

    let message = read(WIRE_TAG_SOURCE)?;
    let req = extract_consts(WIRE_TAG_SOURCE, &message, "REQ_", "request-tag");
    let resp = extract_consts(WIRE_TAG_SOURCE, &message, "RESP_", "response-tag");
    if req.is_empty() || resp.is_empty() {
        return Err(AuditError::ExtractionFailed {
            path: WIRE_TAG_SOURCE.to_string(),
            what: "`const REQ_*` / `const RESP_*` wire tags",
        });
    }
    entries.extend(req);
    entries.extend(resp);

    let persist = read(SNAPSHOT_SOURCE)?;
    let roles = extract_consts(SNAPSHOT_SOURCE, &persist, "ROLE_", "snapshot-role");
    if roles.is_empty() {
        return Err(AuditError::ExtractionFailed {
            path: SNAPSHOT_SOURCE.to_string(),
            what: "`const ROLE_*` snapshot role bytes",
        });
    }
    entries.extend(roles);
    let version = extract_consts(
        SNAPSHOT_SOURCE,
        &persist,
        "FORMAT_VERSION",
        "format-version",
    );
    if version.len() != 1 {
        return Err(AuditError::ExtractionFailed {
            path: SNAPSHOT_SOURCE.to_string(),
            what: "`const FORMAT_VERSION`",
        });
    }
    entries.extend(version);
    Ok(entries)
}

/// Renders entries in the committed registry file format.
pub fn render_registry(entries: &[RegistryEntry]) -> String {
    let mut out = String::new();
    out.push_str(
        "# contracts/registry.txt — the append-only contract registry.\n\
         #\n\
         # Every wire error code, wire request/response tag, snapshot role\n\
         # byte, and the snapshot format version is pinned here. The\n\
         # `irs-audit` registry rule fails the build if any pinned entry is\n\
         # renumbered, renamed, or removed, or if a new value appears in\n\
         # source without being appended here. To add an entry: add it in\n\
         # source, then append the matching line (or regenerate with\n\
         # `cargo run -p irs-audit -- --print-registry`). Never edit or\n\
         # delete existing lines — numbers never change meaning and are\n\
         # never reused (see DESIGN.md, \"Static analysis & enforced\n\
         # contracts\").\n\n",
    );
    let mut family = "";
    for e in entries {
        if e.family != family {
            if !family.is_empty() {
                out.push('\n');
            }
            family = e.family;
        }
        out.push_str(&format!("{e}\n"));
    }
    out
}

/// Compares extracted entries against the committed registry text,
/// producing `registry` violations for drift in either direction.
pub fn diff_registry(extracted: &[RegistryEntry], committed: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Parse the committed file: `family name = value` per line.
    let mut pinned: Vec<(usize, String, String, u64)> = Vec::new(); // (line, family, name, value)
    for (idx, raw) in committed.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = (|| {
            let (family, rest) = line.split_once(' ')?;
            let (name, value) = rest.split_once('=')?;
            Some((
                family.to_string(),
                name.trim().to_string(),
                parse_number(value)?,
            ))
        })();
        match parsed {
            Some((family, name, value)) => pinned.push((idx + 1, family, name, value)),
            None => violations.push(Violation {
                file: REGISTRY_PATH.to_string(),
                line: idx + 1,
                rule: Rule::Registry,
                message: format!(
                    "unparseable registry line `{line}` (expected `<family> <name> = <number>`)"
                ),
            }),
        }
    }
    for e in extracted {
        match pinned.iter().find(|(_, f, n, _)| f == e.family && n == &e.name) {
            None => violations.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: Rule::Registry,
                message: format!(
                    "{} `{}` = {} is not pinned in {REGISTRY_PATH}; append `{e}` (the registry is append-only)",
                    e.family, e.name, e.value
                ),
            }),
            Some((line, _, _, value)) if *value != e.value => violations.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: Rule::Registry,
                message: format!(
                    "{} `{}` changed value: source says {}, {REGISTRY_PATH}:{line} pins {} — numbers never change meaning; assign a fresh number instead",
                    e.family, e.name, e.value, value
                ),
            }),
            Some(_) => {}
        }
    }
    for (line, family, name, _) in &pinned {
        if !extracted
            .iter()
            .any(|e| e.family == family && &e.name == name)
        {
            violations.push(Violation {
                file: REGISTRY_PATH.to_string(),
                line: *line,
                rule: Rule::Registry,
                message: format!(
                    "pinned {family} `{name}` no longer exists in source — contracts are append-only; restore it (renames need a fresh entry, keeping the old number reserved)"
                ),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------------
// Per-file orchestration
// ---------------------------------------------------------------------

/// Audits one source file's content. Pure (no filesystem): the real
/// tree and the unit-test fixtures go through the same code. Returns
/// the surviving violations and the number of honored pragmas.
pub fn audit_source(rel: &str, content: &str) -> (Vec<Violation>, usize) {
    let lexed = Lexed::new(content);
    let mut violations = Vec::new();
    let pragmas = collect_pragmas(rel, &lexed, &mut violations);
    let mut raw = Vec::new();

    let stream = lexed.stream();
    let codec_mask = codec_region_mask(&lexed);
    let has_codec_impl = codec_mask.iter().any(|&m| m);

    // no-panic: listed files entirely, plus Codec impl regions anywhere.
    if NO_PANIC_FILES.contains(&rel) {
        raw.extend(scan_no_panic(rel, &stream, None));
    } else if has_codec_impl {
        raw.extend(scan_no_panic(rel, &stream, Some(&codec_mask)));
    }

    // no-index: untrusted-byte files entirely, plus Codec impl regions.
    if NO_INDEX_FILES.contains(&rel) {
        raw.extend(scan_no_index(rel, &lexed, None));
    } else if has_codec_impl {
        raw.extend(scan_no_index(rel, &lexed, Some(&codec_mask)));
    }

    // lock-discipline: every file in the concurrency crates.
    if LOCK_DISCIPLINE_DIRS.iter().any(|d| rel.starts_with(d)) {
        raw.extend(scan_lock_discipline(rel, &stream));
    }

    // crate-hygiene: every library root must deny missing docs.
    let is_lib_root =
        rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"));
    if is_lib_root
        && !lexed
            .code
            .iter()
            .any(|l| l.contains("#![deny(missing_docs)]"))
    {
        raw.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: Rule::CrateHygiene,
            message: "library crate is missing `#![deny(missing_docs)]`".to_string(),
        });
    }

    let honored = apply_pragmas(rel, raw, pragmas, &mut violations);
    (violations, honored)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every Rust source the audit covers: the root crate's `src/` and
/// each `crates/*/src/`. Integration tests, examples, benches, and the
/// offline dependency shims are out of scope — rules target production
/// code.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries = std::fs::read_dir(&crates).map_err(|e| io_err(&crates, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&crates, &e))?;
            let crate_src = entry.path().join("src");
            if crate_src.is_dir() {
                collect_rs_files(&crate_src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs every rule against the workspace at `root` (the directory
/// holding the top-level `Cargo.toml`, `crates/`, and `contracts/`).
pub fn audit_workspace(root: &Path) -> Result<AuditReport, AuditError> {
    let mut violations = Vec::new();
    let mut pragmas_honored = 0;
    let files = workspace_sources(root)?;
    let files_scanned = files.len();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let content = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
        let (file_violations, honored) = audit_source(&rel, &content);
        violations.extend(file_violations);
        pragmas_honored += honored;
    }

    let extracted = extract_registry(root)?;
    let registry_path = root.join(REGISTRY_PATH);
    match std::fs::read_to_string(&registry_path) {
        Ok(committed) => violations.extend(diff_registry(&extracted, &committed)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => violations.push(Violation {
            file: REGISTRY_PATH.to_string(),
            line: 1,
            rule: Rule::Registry,
            message: format!(
                "{REGISTRY_PATH} does not exist; bootstrap it with `cargo run -p irs-audit -- --print-registry > {REGISTRY_PATH}`"
            ),
        }),
        Err(e) => return Err(io_err(&registry_path, &e)),
    }

    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(AuditReport {
        violations,
        files_scanned,
        pragmas_honored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // A path inside the full no-panic + no-index scope.
    const DECODE_PATH: &str = "crates/wire/src/frame.rs";
    // A path inside the lock-discipline scope only (catalog is not in
    // the no-panic file list, and this is not a crate root).
    const LOCK_PATH: &str = "crates/catalog/src/store.rs";
    // A path outside every scope (and not a crate root, so
    // crate-hygiene stays quiet on fixtures).
    const FREE_PATH: &str = "crates/datagen/src/gen.rs";

    fn violations(rel: &str, src: &str) -> Vec<Violation> {
        audit_source(rel, src).0
    }

    fn rules(rel: &str, src: &str) -> Vec<Rule> {
        violations(rel, src).into_iter().map(|v| v.rule).collect()
    }

    // --- no-panic ---

    #[test]
    fn no_panic_true_positive() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let vs = violations(DECODE_PATH, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, Rule::NoPanic);
        assert_eq!(vs[0].line, 1);
    }

    #[test]
    fn no_panic_catches_every_macro_and_split_lines() {
        for snippet in [
            "fn f() { panic!(\"boom\") }",
            "fn f() { unreachable!() }",
            "fn f() { todo!() }",
            "fn f() { unimplemented!() }",
            "fn f(x: Option<u8>) { x\n    .expect(\"reason\"); }",
            "fn f(x: Option<u8>) { x\n    .unwrap\n    (); }",
        ] {
            assert_eq!(rules(DECODE_PATH, snippet), [Rule::NoPanic], "{snippet}");
        }
    }

    #[test]
    fn no_panic_true_negatives() {
        for snippet in [
            // Recovery combinators are not panics.
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }",
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }",
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }",
            // Out-of-scope files are not scanned.
            // Words in comments and strings are not code.
            "// .unwrap() would panic!( here\nfn f() {}",
            "fn f() -> &'static str { \".unwrap() panic!(\" }",
            // A user macro that merely contains the word.
            "fn f() { my_panic!(\"x\") }",
        ] {
            assert_eq!(rules(DECODE_PATH, snippet), [], "{snippet}");
        }
        assert_eq!(
            rules(FREE_PATH, "fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
            []
        );
    }

    #[test]
    fn no_panic_skips_cfg_test_code() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); panic!(\"x\") }\n}\n";
        assert_eq!(rules(DECODE_PATH, src), []);
    }

    #[test]
    fn no_panic_allowed_by_pragma_same_and_previous_line() {
        let trailing = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // audit: allow(no-panic): proven Some above\n";
        let preceding = "// audit: allow(no-panic): proven Some above\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        for src in [trailing, preceding] {
            let (vs, honored) = audit_source(DECODE_PATH, src);
            assert_eq!(vs, [], "{src}");
            assert_eq!(honored, 1);
        }
    }

    #[test]
    fn stale_pragma_is_a_violation() {
        let src = "// audit: allow(no-panic): this excuses nothing\nfn f() {}\n";
        let vs = violations(DECODE_PATH, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, Rule::Pragma);
        assert!(vs[0].message.contains("stale"), "{}", vs[0].message);
    }

    #[test]
    fn pragma_grammar_is_enforced() {
        // Unknown rule, unwaivable rule, missing reason, malformed.
        for (src, needle) in [
            ("// audit: allow(no-crash): x\nfn f() {}\n", "unknown rule"),
            (
                "// audit: allow(registry): x\nfn f() {}\n",
                "cannot be waived",
            ),
            (
                "// audit: allow(no-panic)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
                "requires a reason",
            ),
            ("// audit: please ignore this\nfn f() {}\n", "malformed"),
        ] {
            let vs = violations(DECODE_PATH, src);
            assert!(
                vs.iter()
                    .any(|v| v.rule == Rule::Pragma && v.message.contains(needle)),
                "{src} -> {vs:?}"
            );
        }
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_waive() {
        let src =
            "// audit: allow(no-index): wrong rule\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let got = rules(DECODE_PATH, src);
        // The unwrap survives and the pragma is stale.
        assert!(got.contains(&Rule::NoPanic), "{got:?}");
        assert!(got.contains(&Rule::Pragma), "{got:?}");
    }

    // --- no-index ---

    #[test]
    fn no_index_true_positive() {
        let src = "fn f(buf: &[u8]) -> u8 { buf[0] }\n";
        let vs = violations(DECODE_PATH, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, Rule::NoIndex);
    }

    #[test]
    fn no_index_true_negatives() {
        for snippet in [
            "fn f(buf: &[u8]) -> Option<&u8> { buf.get(0) }",
            "fn f(buf: &mut [u8]) {}",                  // slice type
            "#[derive(Debug)]\nstruct S;",              // attribute
            "fn f() -> Vec<u8> { vec![1, 2] }",         // macro bracket
            "fn f() -> [u8; 2] { [1, 2] }",             // array type + literal
            "fn f() { let _a = [0u8; 4]; }",            // array literal
            "fn f(v: &[u8]) { for _x in v.iter() {} }", // no bracket at all
        ] {
            assert_eq!(rules(DECODE_PATH, snippet), [], "{snippet}");
        }
        // Indexing outside the decode scope is not this rule's business.
        assert_eq!(rules(LOCK_PATH, "fn f(b: &[u8]) -> u8 { b[0] }"), []);
    }

    #[test]
    fn no_index_allowed_by_pragma() {
        let src = "fn f(b: &[u8], i: usize) -> u8 {\n    // audit: allow(no-index): i is masked to 0..256 above\n    b[i & 0xFF]\n}\n";
        let (vs, honored) = audit_source(DECODE_PATH, src);
        assert_eq!(vs, []);
        assert_eq!(honored, 1);
    }

    // --- lock-discipline ---

    #[test]
    fn lock_discipline_true_positive_across_lines() {
        let src = "fn f(l: &std::sync::RwLock<u8>) -> u8 {\n    *l.read()\n        .unwrap()\n}\n";
        let vs = violations(LOCK_PATH, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, Rule::LockDiscipline);
        assert_eq!(vs[0].line, 2);
    }

    #[test]
    fn lock_discipline_catches_expect_and_all_lock_kinds() {
        for snippet in [
            "fn f(l: &std::sync::RwLock<u8>) { l.write().unwrap(); }",
            "fn f(l: &std::sync::Mutex<u8>) { l.lock().unwrap(); }",
            "fn f(l: &std::sync::Mutex<u8>) { l.lock().expect(\"poisoned\"); }",
        ] {
            let got = rules(LOCK_PATH, snippet);
            assert!(got.contains(&Rule::LockDiscipline), "{snippet} -> {got:?}");
        }
    }

    #[test]
    fn lock_discipline_true_negatives() {
        for snippet in [
            "fn f(l: &std::sync::RwLock<u8>) -> u8 { *l.read().unwrap_or_else(|e| e.into_inner()) }",
            "fn f(l: &std::sync::RwLock<u8>) -> u8 { match l.read() { Ok(g) => *g, Err(_) => 0 } }",
            // Reader-returning io calls are not locks.
            "fn f(mut s: impl std::io::Read) { let mut b = [0u8; 4]; let _ = s.read(&mut b); }",
        ] {
            assert_eq!(rules(LOCK_PATH, snippet), [], "{snippet}");
        }
        // Out of scope: the datagen crate takes no locks.
        assert_eq!(
            rules(
                FREE_PATH,
                "fn f(l: &std::sync::Mutex<u8>) { l.lock().unwrap(); }"
            ),
            []
        );
    }

    #[test]
    fn lock_discipline_allowed_by_pragma() {
        let src = "fn f(l: &std::sync::Mutex<u8>) {\n    // audit: allow(lock-discipline): single-threaded tool, poisoning is unreachable\n    l.lock().unwrap();\n}\n";
        let (vs, honored) = audit_source(LOCK_PATH, src);
        assert_eq!(vs, []);
        assert_eq!(honored, 1);
    }

    // --- codec regions ---

    #[test]
    fn codec_impl_blocks_are_audited_anywhere() {
        let src = "impl Codec for Foo {\n    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {\n        let b = r.buf[0];\n        Ok(Foo(b, r.next().unwrap()))\n    }\n}\n";
        let got = rules(FREE_PATH, src);
        assert!(got.contains(&Rule::NoPanic), "{got:?}");
        assert!(got.contains(&Rule::NoIndex), "{got:?}");
    }

    #[test]
    fn code_outside_codec_impls_is_untouched_in_unscoped_files() {
        let src = "impl Codec for Foo {\n    fn encode_into(&self, out: &mut Vec<u8>) { out.push(0) }\n}\nfn helper(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules(FREE_PATH, src), []);
    }

    #[test]
    fn generic_codec_impl_headers_are_recognized() {
        let src = "impl<E: Endpoint + Codec> Codec for Key<E> {\n    fn decode(r: &mut R) -> Result<Self, PersistError> { r.0.unwrap() }\n}\n";
        assert_eq!(rules(FREE_PATH, src), [Rule::NoPanic]);
    }

    // --- crate hygiene ---

    #[test]
    fn missing_docs_lint_is_required_on_lib_roots() {
        let vs = violations("crates/kds/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, Rule::CrateHygiene);

        let ok = "#![deny(missing_docs)]\npub fn f() {}\n";
        assert_eq!(rules("crates/kds/src/lib.rs", ok), []);
        // Non-root modules carry no such requirement.
        assert_eq!(rules("crates/kds/src/tree.rs", "pub fn f() {}\n"), []);
    }

    // --- registry ---

    fn entry(family: &'static str, name: &str, value: u64) -> RegistryEntry {
        RegistryEntry {
            family,
            name: name.to_string(),
            value,
            file: "src.rs".to_string(),
            line: 1,
        }
    }

    #[test]
    fn registry_roundtrip_is_clean() {
        let extracted = vec![
            entry("error-code", "BadFrame", 400),
            entry("request-tag", "REQ_HEALTH", 1),
        ];
        let committed = render_registry(&extracted);
        assert_eq!(diff_registry(&extracted, &committed), []);
    }

    #[test]
    fn registry_detects_unpinned_renumbered_and_removed() {
        let committed = "error-code BadFrame = 400\nrequest-tag REQ_HEALTH = 1\n";
        // Renumbered in source.
        let renumbered = vec![
            entry("error-code", "BadFrame", 499),
            entry("request-tag", "REQ_HEALTH", 1),
        ];
        let vs = diff_registry(&renumbered, committed);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("changed value"), "{}", vs[0].message);

        // New in source, not pinned.
        let added = vec![
            entry("error-code", "BadFrame", 400),
            entry("error-code", "FrameTooLarge", 401),
            entry("request-tag", "REQ_HEALTH", 1),
        ];
        let vs = diff_registry(&added, committed);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("not pinned"), "{}", vs[0].message);

        // Removed from source but still pinned.
        let removed = vec![entry("error-code", "BadFrame", 400)];
        let vs = diff_registry(&removed, committed);
        assert_eq!(vs.len(), 1);
        assert!(
            vs[0].message.contains("no longer exists"),
            "{}",
            vs[0].message
        );
    }

    #[test]
    fn registry_extraction_parses_enum_and_consts() {
        let wire = "/// docs\npub enum ErrorCode {\n    /// doc\n    BadFrame = 400,\n    FrameTooLarge = 0x191,\n}\n";
        let lexed = Lexed::new(wire);
        let entries = extract_error_codes("wire.rs", &lexed).expect("extracts");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "BadFrame");
        assert_eq!(entries[0].value, 400);
        assert_eq!(entries[1].value, 401);

        let msg =
            "const REQ_HEALTH: u8 = 1;\nconst RESP_OK: u8 = 1;\npub const ROLE_SHARD: u8 = 0x02;\n";
        let lexed = Lexed::new(msg);
        let req = extract_consts("m.rs", &lexed, "REQ_", "request-tag");
        assert_eq!(req.len(), 1);
        assert_eq!(req[0].value, 1);
        let role = extract_consts("m.rs", &lexed, "ROLE_", "snapshot-role");
        assert_eq!(role[0].value, 2);
    }

    // --- lexer corner cases ---

    #[test]
    fn lexer_handles_raw_strings_chars_and_nested_comments() {
        for snippet in [
            "fn f() -> &'static str { r#\"x.unwrap() \"quoted\" panic!(\"#  }",
            "fn f() -> char { '\\'' } fn g() -> char { '[' }",
            "/* outer /* x.unwrap() */ still comment panic!( */ fn f() {}",
            "fn f(b: &[u8]) -> u8 { b\"bytes.unwrap()\"[0]; 0 }", // byte string content inert
        ] {
            let got = rules(DECODE_PATH, snippet);
            // The byte-string case still flags its *indexing*, nothing else.
            assert!(
                got.iter().all(|r| *r == Rule::NoIndex),
                "{snippet} -> {got:?}"
            );
        }
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src =
            "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g(y: Option<u8>) -> u8 { y.unwrap() }\n";
        assert_eq!(rules(DECODE_PATH, src), [Rule::NoPanic]);
    }
}
