//! Cross-crate agreement: every index structure must answer range search
//! and range counting identically to the brute-force oracle — and hence to
//! each other — on every calibrated dataset profile.

use irs::prelude::*;
use irs::BruteForce;

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

/// Runs the full matrix of structures × queries over one dataset.
fn check_profile(profile: irs::datagen::DatasetProfile, n: usize, seed: u64) {
    let data = profile.generate(n, seed);
    let bf = BruteForce::new(&data);
    let ait = Ait::new(&data);
    let aitv = AitV::new(&data);
    let itree = IntervalTree::new(&data);
    let hint = HintM::new(&data);
    let kds = Kds::new(&data);
    let timeline = TimelineIndex::new(&data);
    let period = PeriodIndex::new(&data);
    let segtree = SegmentTree::new(&data);
    ait.validate().unwrap();

    let workload = irs::datagen::QueryWorkload::from_data(&data);
    for extent in [0.0, 1.0, 8.0, 32.0] {
        for q in workload.generate(8, extent, seed ^ 0xABCD) {
            let expect = sorted(bf.range_search(q));
            assert_eq!(
                sorted(ait.range_search(q)),
                expect,
                "{} AIT {q:?}",
                profile.name
            );
            assert_eq!(
                sorted(aitv.range_search(q)),
                expect,
                "{} AIT-V {q:?}",
                profile.name
            );
            assert_eq!(
                sorted(itree.range_search(q)),
                expect,
                "{} itree {q:?}",
                profile.name
            );
            assert_eq!(
                sorted(hint.range_search(q)),
                expect,
                "{} HINTm {q:?}",
                profile.name
            );
            assert_eq!(
                sorted(kds.range_search(q)),
                expect,
                "{} KDS {q:?}",
                profile.name
            );
            assert_eq!(
                sorted(timeline.range_search(q)),
                expect,
                "{} timeline {q:?}",
                profile.name
            );
            assert_eq!(
                sorted(period.range_search(q)),
                expect,
                "{} period {q:?}",
                profile.name
            );
            assert_eq!(
                sorted(segtree.range_search(q)),
                expect,
                "{} segtree {q:?}",
                profile.name
            );
            assert_eq!(
                timeline.range_count(q),
                expect.len(),
                "{} timeline count",
                profile.name
            );
            assert_eq!(
                period.range_count(q),
                expect.len(),
                "{} period count",
                profile.name
            );
            assert_eq!(
                ait.range_count(q),
                expect.len(),
                "{} AIT count",
                profile.name
            );
            assert_eq!(
                hint.range_count(q),
                expect.len(),
                "{} HINTm count",
                profile.name
            );
            assert_eq!(
                kds.range_count(q),
                expect.len(),
                "{} KDS count",
                profile.name
            );
            assert_eq!(
                itree.range_count(q),
                expect.len(),
                "{} itree count",
                profile.name
            );
        }
    }
}

#[test]
fn book_profile_agreement() {
    check_profile(irs::datagen::BOOK, 4000, 1);
}

#[test]
fn btc_profile_agreement() {
    check_profile(irs::datagen::BTC, 4000, 2);
}

#[test]
fn renfe_profile_agreement() {
    check_profile(irs::datagen::RENFE, 4000, 3);
}

#[test]
fn taxi_profile_agreement() {
    check_profile(irs::datagen::TAXI, 4000, 4);
}

#[test]
fn zipf_and_clustered_workloads_agree() {
    for data in [
        irs::datagen::zipf_lengths(3000, 1_000_000, 50_000, 1.1, 5),
        irs::datagen::clustered(3000, 1_000_000, 5, 20_000, 2_000, 6),
    ] {
        let bf = BruteForce::new(&data);
        let ait = Ait::new(&data);
        let hint = HintM::new(&data);
        let kds = Kds::new(&data);
        let workload = irs::datagen::QueryWorkload::from_data(&data);
        for q in workload.generate(10, 4.0, 99) {
            let expect = sorted(bf.range_search(q));
            assert_eq!(sorted(ait.range_search(q)), expect);
            assert_eq!(sorted(hint.range_search(q)), expect);
            assert_eq!(sorted(kds.range_search(q)), expect);
        }
    }
}

#[test]
fn weighted_structures_agree_on_support_and_weight() {
    let data = irs::datagen::BTC.generate(3000, 7);
    let weights = irs::datagen::uniform_weights(data.len(), 8);
    let bf = BruteForce::new_weighted(&data, &weights);
    let awit = Awit::new(&data, &weights);
    let itree = IntervalTree::new_weighted(&data, &weights);
    let hint = HintM::new_weighted(&data, &weights);
    let kds = Kds::new_weighted(&data, &weights);
    let workload = irs::datagen::QueryWorkload::from_data(&data);
    for q in workload.generate(10, 8.0, 10) {
        let expect = sorted(bf.range_search(q));
        assert_eq!(sorted(awit.range_search(q)), expect);
        assert_eq!(sorted(hint.range_search(q)), expect);
        assert_eq!(sorted(kds.range_search(q)), expect);
        assert_eq!(sorted(itree.range_search(q)), expect);
        let expect_w = bf.result_weight(q);
        let got_w = awit.range_weight(q);
        assert!((got_w - expect_w).abs() <= 1e-6 * expect_w.max(1.0));
    }
}
