//! Wire-level integration: a real `irs-server` on an ephemeral port,
//! driven by real `RemoteClient` connections over TCP.
//!
//! What must hold:
//! - **Oracle agreement**: answers over the wire match the brute-force
//!   oracle, from several concurrent client threads at once.
//! - **Seeded replay**: `run_seeded` over the wire is byte-identical to
//!   the same batch against the same backend in-process.
//! - **Mutation contract**: remote inserts/deletes honor the global-id
//!   contract, interleaved with in-process writers on the same backend.
//! - **Graceful shutdown**: a drain loses no acked mutation — every id
//!   the server acknowledged is queryable after `join` returns.
//! - **Snapshot admin**: save-over-wire → load produces an equivalent
//!   backend (seeded replay matches the original).

use irs::prelude::*;
use irs::BruteForce;
use std::sync::atomic::{AtomicU64, Ordering};

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

fn backend(n: usize, shards: usize) -> (Vec<Interval64>, Client<i64>) {
    let data = irs::datagen::TAXI.generate(n, 11);
    let client = Irs::builder()
        .kind(IndexKind::Ait)
        .shards(shards)
        .seed(7)
        .build(&data)
        .expect("build");
    (data, client)
}

#[test]
fn concurrent_remote_clients_agree_with_the_oracle() {
    let (data, client) = backend(4000, 4);
    let bf = BruteForce::new(&data);
    let handle = irs::serve(client, ("127.0.0.1", 0)).expect("serve");
    let addr = handle.local_addr();

    let workload = irs::datagen::QueryWorkload::from_data(&data);
    let queries = workload.generate(24, 8.0, 0xC0FFEE);

    std::thread::scope(|scope| {
        for t in 0..6 {
            let queries = &queries;
            let bf = &bf;
            let data = &data;
            scope.spawn(move || {
                let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
                for (i, &q) in queries.iter().enumerate() {
                    if i % 6 != t {
                        continue; // disjoint slices, all threads busy
                    }
                    let expect = sorted(bf.range_search(q));
                    assert_eq!(remote.count(q).expect("count"), expect.len(), "{q:?}");
                    assert_eq!(sorted(remote.search(q).expect("search")), expect, "{q:?}");
                    for id in remote.sample(q, 64).expect("sample") {
                        assert!(
                            data[id as usize].overlaps(&q),
                            "sampled id {id} outside {q:?}"
                        );
                    }
                    let p = q.lo;
                    assert_eq!(
                        sorted(remote.stab(p).expect("stab")),
                        sorted(bf.stab(p)),
                        "stab {p}"
                    );
                }
            });
        }
    });

    handle.shutdown();
    handle.join();
}

#[test]
fn seeded_replay_is_byte_identical_to_in_process() {
    let (data, client) = backend(3000, 3);
    let handle = irs::serve(client.clone(), ("127.0.0.1", 0)).expect("serve");
    let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");

    let workload = irs::datagen::QueryWorkload::from_data(&data);
    let queries: Vec<Query<i64>> = workload
        .generate(16, 8.0, 0x5EED)
        .into_iter()
        .map(|q| Query::Sample { q, s: 32 })
        .collect();

    for seed in [0u64, 42, u64::MAX] {
        let over_wire = remote.run_seeded(&queries, seed).expect("run_seeded");
        let in_process = client.run_seeded(&queries, seed);
        assert_eq!(over_wire.len(), in_process.len());
        for (i, (w, l)) in over_wire.iter().zip(&in_process).enumerate() {
            // Not just the same distribution: the same bytes.
            assert_eq!(
                w.as_ref().expect("wire ok"),
                l.as_ref().expect("local ok"),
                "seed {seed} query {i}"
            );
        }
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn remote_mutations_honor_the_global_id_contract() {
    let (_, client) = backend(1000, 2);
    let handle = irs::serve(client.clone(), ("127.0.0.1", 0)).expect("serve");
    let addr = handle.local_addr();

    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    let before = remote.count(Interval::new(i64::MIN, i64::MAX)).unwrap();

    // Remote and in-process writers interleave on one backend; ids stay
    // globally unique and every acked insert is immediately queryable.
    let remote_id = remote.insert(Interval::new(-100, -90)).expect("insert");
    let mut local = client.clone();
    let local_id = local.insert(Interval::new(-80, -70)).expect("insert");
    assert_ne!(remote_id, local_id);
    assert_eq!(
        sorted(remote.search(Interval::new(-100, -70)).unwrap()),
        sorted(vec![remote_id, local_id])
    );

    // Deleting a remote-inserted id locally, and vice versa.
    local.remove(remote_id).expect("remove remote id locally");
    remote.remove(local_id).expect("remove local id remotely");
    assert_eq!(remote.count(Interval::new(-100, -70)).unwrap(), 0);
    assert_eq!(
        remote.count(Interval::new(i64::MIN, i64::MAX)).unwrap(),
        before
    );

    // A retired id stays retired across the wire: typed error, not a
    // crash, not a reuse.
    let err = remote.remove(remote_id).expect_err("already removed");
    assert_eq!(err.code, ErrorCode::UpdateUnknownId);

    handle.shutdown();
    handle.join();
}

#[test]
fn graceful_shutdown_loses_no_acked_mutation() {
    let (_, client) = backend(500, 2);
    let handle = irs::serve(client, ("127.0.0.1", 0)).expect("serve");
    let addr = handle.local_addr();
    // A Client clone that outlives the server: the observation point.
    let observer = handle.client();
    // Inserts land in [1M, 2M); anything already there is baseline.
    let insert_range = Interval::new(1_000_000, 2_000_000);
    let baseline = observer.count(insert_range).expect("baseline count");

    let acked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // Four writers hammer inserts; mid-flight, a fifth connection
        // requests shutdown. Writers stop when their connection dies.
        for t in 0..4i64 {
            let acked = &acked;
            scope.spawn(move || {
                let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
                for i in 0..10_000i64 {
                    let lo = 1_000_000 + t * 100_000 + i;
                    match remote.insert(Interval::new(lo, lo + 10)) {
                        Ok(_) => {
                            acked.fetch_add(1, Ordering::SeqCst);
                        }
                        // Server draining: connection refused/closed.
                        Err(_) => break,
                    }
                }
            });
        }
        let acked = &acked;
        scope.spawn(move || {
            // Let the writers land some inserts first.
            while acked.load(Ordering::SeqCst) < 200 {
                std::thread::yield_now();
            }
            let mut admin = RemoteClient::<i64>::connect(addr).expect("connect");
            admin.shutdown().expect("shutdown acked");
        });
    });
    handle.join();

    // Every mutation the server acked must be present; un-acked ones
    // may or may not be (their connections died mid-call), so count
    // only the lower bound.
    let acked = acked.load(Ordering::SeqCst) as usize;
    assert!(acked >= 200, "writers should have landed inserts");
    let present = observer.count(insert_range).expect("count after drain") - baseline;
    assert!(
        present >= acked,
        "drain lost mutations: {acked} acked, {present} present"
    );
}

#[test]
fn wire_load_swaps_backends_atomically_under_concurrent_readers() {
    let tmp = std::env::temp_dir().join(format!("irs-wire-swap-{}", std::process::id()));
    // Two snapshots with unmistakably different cardinalities: any torn
    // read (half old backend, half new) would produce a third count.
    let (_, small) = backend(1000, 2);
    let (_, large) = backend(2500, 2);
    let small_dir = tmp.join("small");
    let large_dir = tmp.join("large");
    small.save(&small_dir).expect("save small");
    large.save(&large_dir).expect("save large");
    // A corrupt directory: framing garbage where a manifest should be.
    let corrupt_dir = tmp.join("corrupt");
    std::fs::create_dir_all(&corrupt_dir).expect("mkdir");
    for entry in std::fs::read_dir(&small_dir).expect("ls") {
        let entry = entry.expect("entry");
        std::fs::write(corrupt_dir.join(entry.file_name()), b"not a snapshot").expect("write");
    }

    let handle = irs::serve(small, ("127.0.0.1", 0)).expect("serve");
    let addr = handle.local_addr();
    let all = Interval::new(i64::MIN, i64::MAX);
    let done = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Readers hammer a full-range count: every answer must be one
        // of the two snapshot cardinalities — a load is all-or-nothing.
        for _ in 0..4 {
            let done = &done;
            scope.spawn(move || {
                let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
                while !done.load(Ordering::SeqCst) {
                    let n = remote.count(all).expect("count during swaps");
                    assert!(
                        n == 1000 || n == 2500,
                        "torn response: count {n} matches neither snapshot"
                    );
                }
            });
        }

        // The admin alternates backend swaps, with a corrupt load mixed
        // in: the failure is a typed persist error, the serving backend
        // stays whole, and the readers never notice.
        let admin_done = &done;
        scope.spawn(move || {
            let mut admin = RemoteClient::<i64>::connect(addr).expect("connect");
            let small = small_dir.to_str().expect("utf8");
            let large = large_dir.to_str().expect("utf8");
            let corrupt = corrupt_dir.to_str().expect("utf8");
            for round in 0..10 {
                admin
                    .load(if round % 2 == 0 { large } else { small })
                    .expect("load over wire");
                if round == 5 {
                    let err = admin.load(corrupt).expect_err("corrupt load must fail");
                    let code = err.code as u16;
                    assert!(
                        (300..400).contains(&code),
                        "corrupt load answered {code}, not a persist error"
                    );
                    // The refusal left the previous backend serving.
                    assert_eq!(admin.count(all).expect("count after refusal"), 1000);
                }
            }
            admin_done.store(true, Ordering::SeqCst);
        });
    });

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn snapshot_saved_over_the_wire_loads_into_an_equivalent_backend() {
    let tmp = std::env::temp_dir().join(format!("irs-wire-snap-{}", std::process::id()));
    let (data, client) = backend(2000, 2);
    let handle = irs::serve(client.clone(), ("127.0.0.1", 0)).expect("serve");
    let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");

    let dir = tmp.to_str().expect("utf8 temp path");
    remote.save(dir).expect("save over wire");

    // The manifest is inspectable over the wire and names what we built.
    let info = remote.inspect_snapshot(dir).expect("inspect");
    assert_eq!(info.kind, "ait");
    assert_eq!(info.endpoint, "i64");
    assert_eq!(info.shards, 2);
    assert_eq!(info.len, data.len());

    // Loading the snapshot in-process yields a backend whose seeded
    // replay matches the serving one exactly.
    let restored = Client::<i64>::load(dir).expect("load");
    let workload = irs::datagen::QueryWorkload::from_data(&data);
    let queries: Vec<Query<i64>> = workload
        .generate(8, 8.0, 0xAB)
        .into_iter()
        .map(|q| Query::Sample { q, s: 16 })
        .collect();
    let a = client.run_seeded(&queries, 9);
    let b = restored.run_seeded(&queries, 9);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
    }

    // Load-over-the-wire swaps the serving backend (here: to the same
    // state), and the server keeps answering afterwards.
    remote.load(dir).expect("load over wire");
    assert_eq!(
        remote.count(Interval::new(i64::MIN, i64::MAX)).unwrap(),
        data.len()
    );

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&tmp).ok();
}
