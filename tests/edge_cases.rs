//! Focused edge-case batch across the whole workspace: query/dataset
//! boundary geometry, degenerate shapes, and white-box behaviours that
//! the broad property tests cover only probabilistically.

use irs::prelude::*;
use irs::BruteForce;
use rand::{rngs::StdRng, SeedableRng};

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

/// All structures on a given dataset must agree with the oracle on `q`.
fn assert_all_agree(data: &[Interval64], q: Interval64, label: &str) {
    let bf = BruteForce::new(data);
    let expect = sorted(bf.range_search(q));
    assert_eq!(
        sorted(Ait::new(data).range_search(q)),
        expect,
        "{label}: AIT"
    );
    assert_eq!(
        sorted(AitV::new(data).range_search(q)),
        expect,
        "{label}: AIT-V"
    );
    assert_eq!(
        sorted(IntervalTree::new(data).range_search(q)),
        expect,
        "{label}: itree"
    );
    assert_eq!(
        sorted(HintM::new(data).range_search(q)),
        expect,
        "{label}: HINTm"
    );
    assert_eq!(
        sorted(Kds::new(data).range_search(q)),
        expect,
        "{label}: KDS"
    );
    assert_eq!(
        sorted(TimelineIndex::new(data).range_search(q)),
        expect,
        "{label}: timeline"
    );
    assert_eq!(
        sorted(PeriodIndex::new(data).range_search(q)),
        expect,
        "{label}: period"
    );
    assert_eq!(
        sorted(SegmentTree::new(data).range_search(q)),
        expect,
        "{label}: segtree"
    );
}

#[test]
fn single_interval_all_query_relations() {
    let data = vec![Interval::new(10i64, 20)];
    // Allen's relations of q against [10, 20]: before, meets, overlaps,
    // starts, during, finishes, contains, equals, met-by, after.
    for (q, label) in [
        (Interval::new(0, 9), "before"),
        (Interval::new(0, 10), "meets"),
        (Interval::new(5, 15), "overlaps"),
        (Interval::new(10, 15), "starts"),
        (Interval::new(12, 18), "during"),
        (Interval::new(15, 20), "finishes"),
        (Interval::new(5, 25), "contains"),
        (Interval::new(10, 20), "equals"),
        (Interval::new(20, 30), "met-by"),
        (Interval::new(21, 30), "after"),
    ] {
        assert_all_agree(&data, q, label);
    }
}

#[test]
fn touching_chain_of_intervals() {
    // Consecutive intervals share exactly one endpoint; closed-interval
    // semantics make both sides match at the joints.
    let data: Vec<Interval64> = (0..50)
        .map(|i| Interval::new(i * 10, (i + 1) * 10))
        .collect();
    for joint in [10i64, 250, 490] {
        assert_all_agree(&data, Interval::point(joint), "joint");
    }
    assert_all_agree(&data, Interval::new(95, 105), "straddling a joint");
}

#[test]
fn all_points_same_location() {
    let data = vec![Interval::point(42i64); 64];
    assert_all_agree(&data, Interval::point(42), "exact hit");
    assert_all_agree(&data, Interval::new(41, 41), "just left");
    assert_all_agree(&data, Interval::new(43, 100), "just right");
    assert_all_agree(&data, Interval::new(0, 100), "cover");
}

#[test]
fn one_giant_interval_among_points() {
    let mut data: Vec<Interval64> = (0..100).map(|i| Interval::point(i * 100)).collect();
    data.push(Interval::new(-1_000_000, 1_000_000));
    assert_all_agree(&data, Interval::new(4_990, 5_010), "mid");
    assert_all_agree(&data, Interval::new(-999_999, -1), "only giant");
    assert_all_agree(&data, Interval::new(10_000, 10_000), "last point");
}

#[test]
fn query_equals_domain_boundaries() {
    let data: Vec<Interval64> = (0..200).map(|i| Interval::new(i, i + 7)).collect();
    let (dmin, dmax) = irs::domain_bounds(&data).unwrap();
    assert_all_agree(&data, Interval::new(dmin, dmin), "left edge stab");
    assert_all_agree(&data, Interval::new(dmax, dmax), "right edge stab");
    assert_all_agree(&data, Interval::new(dmin, dmax), "whole domain");
}

#[test]
fn ait_case1_only_and_case2_only_paths() {
    // Query strictly left (or right) of every center exercises a pure
    // case-1 (case-2) descent with no fork.
    let data: Vec<Interval64> = (0..128)
        .map(|i| Interval::new(i * 100, i * 100 + 90))
        .collect();
    let ait = Ait::new(&data);
    let bf = BruteForce::new(&data);
    // Far-left query: a prefix of the dataset.
    let ql = Interval::new(-50, 120);
    assert_eq!(sorted(ait.range_search(ql)), sorted(bf.range_search(ql)));
    // Far-right query: a suffix.
    let qr = Interval::new(12_650, 13_000);
    assert_eq!(sorted(ait.range_search(qr)), sorted(bf.range_search(qr)));
    use irs::{PreparedSampler, RangeSampler};
    let p = ait.prepare(ql);
    assert_eq!(p.candidate_count(), bf.range_count(ql));
    // A query overlapping nothing walks pure case-1 to the leftmost leaf
    // and produces no records at all.
    let p_empty = ait.prepare(Interval::new(-500, -100));
    assert!(p_empty.records().is_empty());
    assert_eq!(p_empty.candidate_count(), 0);
}

#[test]
fn ait_case3_at_root_uses_child_al_lists() {
    use irs::RangeSampler;
    let data: Vec<Interval64> = (0..101).map(|i| Interval::new(i, i + 1)).collect();
    let ait = Ait::new(&data);
    // A query covering the root center forks exactly once.
    let q = Interval::new(30, 70);
    let p = ait.prepare(q);
    let al_records = p
        .records()
        .iter()
        .filter(|r| matches!(r.kind, irs::ListKind::AllLo | irs::ListKind::AllHi))
        .count();
    assert!(al_records <= 2, "at most two AL records, got {al_records}");
    assert_eq!(p.candidate_count(), BruteForce::new(&data).range_count(q));
}

#[test]
fn awit_range_weight_at_boundaries() {
    let data = vec![
        Interval::new(0i64, 10),
        Interval::new(10, 20),
        Interval::new(20, 30),
    ];
    let weights = vec![1.0, 10.0, 100.0];
    let awit = Awit::new(&data, &weights);
    assert_eq!(awit.range_weight(Interval::point(10)), 11.0);
    assert_eq!(awit.range_weight(Interval::point(20)), 110.0);
    assert_eq!(awit.range_weight(Interval::new(0, 30)), 111.0);
    assert_eq!(awit.range_weight(Interval::new(31, 40)), 0.0);
}

#[test]
fn timeline_time_travel_matches_stab() {
    let data: Vec<Interval64> = (0..300)
        .map(|i| Interval::new(i % 97, i % 97 + i % 13))
        .collect();
    let tl = TimelineIndex::with_checkpoint_period(&data, 16);
    let bf = BruteForce::new(&data);
    for p in [0i64, 13, 50, 96, 108, 200] {
        assert_eq!(sorted(tl.active_at(p)), sorted(bf.stab(p)), "active_at {p}");
    }
}

#[test]
fn hint_minimum_levels_degenerate_grid() {
    // m = 1 gives only 3 partitions total; everything replicates heavily.
    let data: Vec<Interval64> = (0..200)
        .map(|i| Interval::new(i * 3, i * 3 + 100))
        .collect();
    let hint = HintM::with_levels(&data, 1);
    let bf = BruteForce::new(&data);
    for q in [
        Interval::new(0, 700),
        Interval::new(300, 310),
        Interval::new(599, 700),
    ] {
        assert_eq!(
            sorted(hint.range_search(q)),
            sorted(bf.range_search(q)),
            "{q:?}"
        );
    }
}

#[test]
fn kds_query_outside_bounding_box() {
    let data: Vec<Interval64> = (100..200).map(|i| Interval::new(i, i + 10)).collect();
    let kds = Kds::new(&data);
    assert!(kds.range_search(Interval::new(0, 50)).is_empty());
    assert!(kds.range_search(Interval::new(300, 400)).is_empty());
    assert_eq!(kds.range_count(Interval::new(0, 1000)), 100);
}

#[test]
fn samplers_respect_closed_boundary_membership() {
    // The sample support must include intervals touching the query only
    // at a single shared endpoint.
    let data = vec![
        Interval::new(0i64, 100), // ends exactly at q.lo
        Interval::new(200, 300),  // starts exactly at q.hi
        Interval::new(120, 180),  // inside
        Interval::new(0, 99),     // misses by one
        Interval::new(201, 300),  // misses by one
    ];
    let q = Interval::new(100, 200);
    let mut rng = StdRng::seed_from_u64(3);
    for (name, samples) in [
        ("AIT", Ait::new(&data).sample(q, 3000, &mut rng)),
        ("AIT-V", AitV::new(&data).sample(q, 3000, &mut rng)),
        ("KDS", Kds::new(&data).sample(q, 3000, &mut rng)),
    ] {
        let mut seen = samples.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2], "{name}: wrong support");
    }
}

#[test]
fn dynamic_awit_interleaves_with_static_equivalence() {
    let data: Vec<Interval64> = (0..150).map(|i| Interval::new(i, i + 12)).collect();
    let weights: Vec<f64> = (0..150).map(|i| 1.0 + (i % 4) as f64).collect();
    let mut dynamic = DynamicAwit::new(&data, &weights);
    // Apply deletes + inserts, then compare against a static AWIT over
    // the equivalent final state.
    for id in 0..30u32 {
        assert!(dynamic.delete(data[id as usize], id));
    }
    let mut final_data: Vec<Interval64> = data[30..].to_vec();
    let mut final_weights: Vec<f64> = weights[30..].to_vec();
    for k in 0..10 {
        let iv = Interval::new(500 + k, 540 + k);
        dynamic.insert(iv, 3.0);
        final_data.push(iv);
        final_weights.push(3.0);
    }
    let static_awit = Awit::new(&final_data, &final_weights);
    for q in [
        Interval::new(0, 600),
        Interval::new(25, 45),
        Interval::new(505, 510),
    ] {
        assert_eq!(dynamic.range_count(q), static_awit.range_count(q), "{q:?}");
        let dw = dynamic.range_weight(q);
        let sw = static_awit.range_weight(q);
        assert!((dw - sw).abs() < 1e-9 * sw.max(1.0), "{q:?}: {dw} vs {sw}");
    }
}
