//! Replication, crash recovery, and failover — the fault-injection
//! suite for the write-ahead mutation log.
//!
//! What must hold:
//! - **No acked mutation is lost.** Every batch the primary acked is in
//!   its fsynced log; after the primary dies, `Client::recover` on the
//!   dead primary's disk (snapshot + checkpoint + log tail) rebuilds the
//!   exact acked state, and a replica promoted to the writer seat serves
//!   it too.
//! - **Log replay ≡ direct application.** The replayed state is
//!   *byte-identical* under `run_seeded` to applying the same batches
//!   directly — for every update-capable kind × shard count (property
//!   test below).
//! - **Replicas are read-only until promoted**, refuse mutations with
//!   the typed replication-read-only code, and honor the global-id
//!   contract, oracle agreement, and chi-square unbiasedness after
//!   promotion.

use irs::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A unique, self-cleaning scratch directory per test case.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("irs-repl-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

/// A mixed query batch over the data's domain, for seeded-replay
/// byte-identity checks.
fn query_batch(data: &[Interval64]) -> Vec<Query<i64>> {
    let workload = irs::datagen::QueryWorkload::from_data(data);
    workload
        .generate(4, 8.0, 0xBEEF)
        .into_iter()
        .flat_map(|q| {
            [
                Query::Count { q },
                Query::Search { q },
                Query::Stab { p: q.lo },
                Query::Sample { q, s: 24 },
            ]
        })
        .collect()
}

/// Runs the same seeded batch on a remote node and a local oracle and
/// demands byte identity (not just distributional agreement).
fn assert_seeded_replay_matches(
    remote: &mut irs::RemoteClient<i64>,
    oracle: &Client<i64>,
    queries: &[Query<i64>],
    what: &str,
) {
    for seed in [0u64, 42, 0xDEAD_BEEF] {
        let over_wire = remote.run_seeded(queries, seed).expect("run_seeded");
        let local = oracle.run_seeded(queries, seed);
        assert_eq!(over_wire.len(), local.len(), "{what} seed {seed}");
        for (i, (w, l)) in over_wire.iter().zip(&local).enumerate() {
            assert_eq!(
                w.as_ref().expect("wire ok"),
                l.as_ref().expect("oracle ok"),
                "{what} seed {seed} query {i}: replayed state diverged"
            );
        }
    }
}

/// One churn step through the wire: two inserts, every third batch also
/// a delete of the oldest live id. Acked outcomes are recorded and the
/// batch is appended to `log` so an oracle can re-apply it in order.
fn churn_step(
    remote: &mut irs::RemoteClient<i64>,
    i: usize,
    live: &mut Vec<ItemId>,
    deleted: &mut Vec<ItemId>,
    log: &mut Vec<Vec<Mutation<i64>>>,
) {
    let lo = 7_000 * i as i64;
    let mut muts = vec![
        Mutation::Insert {
            iv: Interval::new(lo, lo + 3_000),
        },
        Mutation::Insert {
            iv: Interval::new(lo + 500, lo + 60_000),
        },
    ];
    if i % 3 == 2 && !live.is_empty() {
        muts.push(Mutation::Delete { id: live.remove(0) });
    }
    let results = remote.apply(&muts).expect("apply on the writer seat");
    for (m, r) in muts.iter().zip(&results) {
        match (m, r.as_ref().expect("acked mutation")) {
            (Mutation::Delete { id }, UpdateOutput::Removed) => deleted.push(*id),
            (_, UpdateOutput::Inserted(id)) => live.push(*id),
            (m, out) => panic!("churn step {i}: {m:?} acked as {out:?}"),
        }
    }
    log.push(muts);
}

/// Polls a node until its applied log position reaches `target`.
fn await_catch_up(remote: &mut irs::RemoteClient<i64>, target: u64, what: &str) {
    for _ in 0..600 {
        let status = remote.replication_status().expect("replication status");
        if status.last_seq >= target {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("{what}: never caught up to seq {target}");
}

/// The flagship failover walk: a primary churns under a write-ahead
/// log, snapshots mid-churn, keeps churning while a replica bootstraps
/// and follows live, then dies. Crash recovery from the dead primary's
/// own disk and the promoted replica must both reproduce the acked
/// state byte-for-byte, and the promoted replica must uphold every
/// client-visible contract (ids, oracle agreement, unbiased sampling).
#[test]
fn failover_loses_no_acked_mutation_and_promoted_replica_replays_identically() {
    let base = TempDir::new("failover");
    let wal_path = base.path().join("primary-wal.irs");
    let snap_dir = base.path().join("primary-snap");
    let replica_dir = base.path().join("replica");

    let data = irs::datagen::TAXI.generate(2_000, 11);
    let build = || {
        Irs::builder()
            .kind(IndexKind::Ait)
            .shards(2)
            .seed(7)
            .build(&data)
            .expect("build")
    };
    let mut oracle = build();

    let wal = irs::WalWriter::<i64>::create(&wal_path, 1).expect("create wal");
    let primary = irs::serve_primary(build(), ("127.0.0.1", 0), wal).expect("serve primary");
    let paddr = primary.local_addr();
    let mut rp = RemoteClient::<i64>::connect(paddr).expect("connect primary");
    assert_eq!(rp.replication_status().expect("status").role, "primary");

    let mut live = Vec::new();
    let mut deleted = Vec::new();
    let mut log: Vec<Vec<Mutation<i64>>> = Vec::new();

    // Phase 1: churn, then snapshot (which also writes the checkpoint
    // sidecar — the point the log tail replays from).
    for i in 0..10 {
        churn_step(&mut rp, i, &mut live, &mut deleted, &mut log);
    }
    rp.save(snap_dir.to_str().expect("utf-8 path"))
        .expect("snapshot on the primary");

    // Phase 2: more churn, then a replica bootstraps from the live
    // primary (snapshot fetch + log tail) and follows.
    for i in 10..20 {
        churn_step(&mut rp, i, &mut live, &mut deleted, &mut log);
    }
    let replica = irs::serve_replica::<i64>(("127.0.0.1", 0), &paddr.to_string(), &replica_dir)
        .expect("bootstrap replica");
    let raddr = replica.local_addr();
    let mut rr = RemoteClient::<i64>::connect(raddr).expect("connect replica");
    let status = rr.replication_status().expect("status");
    assert_eq!(status.role, "replica");
    assert_eq!(status.primary.as_deref(), Some(paddr.to_string().as_str()));

    // Phase 3: churn against the primary while the replica follows.
    for i in 20..30 {
        churn_step(&mut rp, i, &mut live, &mut deleted, &mut log);
    }
    let target = rp.replication_status().expect("status").last_seq;
    assert_eq!(target, log.len() as u64, "one log record per acked batch");
    await_catch_up(&mut rr, target, "replica");

    // A following replica refuses mutations with the typed code.
    let err = rr
        .insert(Interval::new(1, 2))
        .expect_err("replica must be read-only");
    assert_eq!(err.code, ErrorCode::ReplicationReadOnly, "{err}");

    // Kill the primary mid-churn (drain + join: the process is gone).
    primary.shutdown();
    primary.join();

    // The oracle twin applies the same acked batches in the same order.
    for muts in &log {
        let _ = oracle.apply(muts);
    }
    let queries = query_batch(&data);

    // Crash recovery from the dead primary's own disk: snapshot +
    // checkpoint + fsynced log tail rebuild the exact acked state.
    let (recovered, wal, replay) =
        Client::<i64>::recover(&snap_dir, &wal_path).expect("crash recovery");
    assert!(replay.stopped.is_none(), "clean log: {:?}", replay.stopped);
    assert_eq!(replay.last_seq(), target);
    assert_eq!(wal.next_seq(), target + 1);
    assert_eq!(recovered.len(), oracle.len());
    for seed in [3u64, 0xABCD] {
        assert_eq!(
            recovered.run_seeded(&queries, seed),
            oracle.run_seeded(&queries, seed),
            "recovered state diverged from the acked history (seed {seed})"
        );
    }

    // Promote the replica: it takes the writer seat.
    let status = rr.promote().expect("promote");
    assert_eq!(status.role, "primary");
    assert_eq!(status.last_seq, target);
    assert_eq!(
        rr.promote()
            .expect_err("second promote must be refused")
            .code,
        ErrorCode::ReplicationNotReplica
    );

    // Post-promotion byte-identity with the unfailed oracle run.
    assert_seeded_replay_matches(&mut rr, &oracle, &queries, "promoted replica");

    // The global-id contract survived the failover: every acked-live id
    // is served, no deleted id resurfaces, new ids never collide.
    let everything = Interval::new(i64::MIN, i64::MAX);
    let served = sorted(rr.search(everything).expect("search"));
    for id in &live {
        assert!(served.binary_search(id).is_ok(), "acked id {id} lost");
    }
    for id in &deleted {
        assert!(
            served.binary_search(id).is_err(),
            "deleted id {id} resurrected"
        );
    }
    let muts: Vec<Mutation<i64>> = vec![
        Mutation::Insert {
            iv: Interval::new(5, 50),
        },
        Mutation::Delete { id: deleted[0] },
    ];
    let results = rr.apply(&muts).expect("post-promotion batch");
    let _ = oracle.apply(&muts);
    match &results[0] {
        Ok(UpdateOutput::Inserted(id)) => {
            assert!(
                !live.contains(id) && !deleted.contains(id),
                "id {id} reissued after failover"
            );
        }
        other => panic!("post-promotion insert: {other:?}"),
    }
    assert_eq!(
        results[1]
            .as_ref()
            .expect_err("retired id must stay dead")
            .code,
        ErrorCode::UpdateUnknownId,
        "deleting a retired id must be the typed per-mutation error"
    );
    assert_seeded_replay_matches(&mut rr, &oracle, &queries, "post-promotion writes");

    // Chi-square unbiasedness on the promoted replica: uniform sampling
    // over a query's result set stays unbiased after the whole walk.
    let workload = irs::datagen::QueryWorkload::from_data(&data);
    let q = workload
        .generate(32, 2.0, 0x51)
        .into_iter()
        .find(|&q| {
            let m = rr.count(q).expect("count");
            (8..=128).contains(&m)
        })
        .expect("a query with a mid-sized result set");
    let members = sorted(rr.search(q).expect("search"));
    let index: HashMap<ItemId, usize> =
        members.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let draws = 400 * members.len();
    let mut counts = vec![0u64; members.len()];
    for chunk in 0..4 {
        for id in rr.sample(q, draws / 4).expect("sample") {
            counts[*index
                .get(&id)
                .unwrap_or_else(|| panic!("sampled id {id} outside q ∩ X (chunk {chunk})"))] += 1;
        }
    }
    assert!(
        irs::sampling::stats::chi_square_uniformity_ok(&counts, draws as u64),
        "promoted replica's uniform sampling is biased: {counts:?}"
    );

    rr.shutdown().expect("shutdown replica");
    replica.join();
}

/// Concurrent writers hammer the primary while two replicas follow;
/// after the primary dies, the first replica is promoted and must serve
/// every mutation any writer ever got an ack for. `IRS_REPLICATION_STRESS=1`
/// scales the churn up and keeps the log under `target/replication-stress/`
/// (CI uploads it as an artifact when this fails).
#[test]
fn concurrent_writers_lose_nothing_across_failover_to_a_promoted_replica() {
    let stress = std::env::var("IRS_REPLICATION_STRESS").is_ok();
    let (writers, batches) = if stress { (4usize, 120usize) } else { (2, 20) };
    let stress_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/replication-stress");
    let temp; // keeps the non-stress scratch dir alive (and cleaned) to test end
    let base: &Path = if stress {
        let _ = std::fs::remove_dir_all(&stress_dir);
        std::fs::create_dir_all(&stress_dir).expect("create stress dir");
        &stress_dir
    } else {
        temp = TempDir::new("writers");
        temp.path()
    };
    let wal_path = base.join("wal.irs");

    let data = irs::datagen::TAXI.generate(1_000, 5);
    let client = Irs::builder()
        .kind(IndexKind::Ait)
        .shards(3)
        .seed(9)
        .build(&data)
        .expect("build");
    let initial = client.len();
    let wal = irs::WalWriter::<i64>::create(&wal_path, 1).expect("create wal");
    let primary = irs::serve_primary(client, ("127.0.0.1", 0), wal).expect("serve primary");
    let paddr = primary.local_addr();

    let replica_a =
        irs::serve_replica::<i64>(("127.0.0.1", 0), &paddr.to_string(), base.join("ra"))
            .expect("replica a");
    let replica_b =
        irs::serve_replica::<i64>(("127.0.0.1", 0), &paddr.to_string(), base.join("rb"))
            .expect("replica b");

    // Writers: each inserts `batches` batches and deletes a third of its
    // own acked ids, tracking exactly what the server acked.
    let acked: Vec<(Vec<ItemId>, Vec<ItemId>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                scope.spawn(move || {
                    let mut remote = RemoteClient::<i64>::connect(paddr).expect("connect");
                    let mut mine = Vec::new();
                    let mut gone = Vec::new();
                    for b in 0..batches {
                        let lo = (w * batches + b) as i64 * 1_000;
                        let muts: Vec<Mutation<i64>> = (0..4)
                            .map(|j| Mutation::Insert {
                                iv: Interval::new(lo + j * 10, lo + j * 10 + 5_000),
                            })
                            .collect();
                        for r in remote.apply(&muts).expect("apply") {
                            mine.push(r.expect("acked insert").inserted().expect("insert id"));
                        }
                        if b % 3 == 2 {
                            let id = mine.remove(0);
                            remote
                                .apply(&[Mutation::Delete { id }])
                                .expect("apply")
                                .remove(0)
                                .expect("acked delete");
                            gone.push(id);
                        }
                    }
                    (mine, gone)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("writer"))
            .collect()
    });

    let mut rp = RemoteClient::<i64>::connect(paddr).expect("connect");
    let target = rp.replication_status().expect("status").last_seq;
    let mut ra = RemoteClient::<i64>::connect(replica_a.local_addr()).expect("connect a");
    let mut rb = RemoteClient::<i64>::connect(replica_b.local_addr()).expect("connect b");
    await_catch_up(&mut ra, target, "replica a");
    await_catch_up(&mut rb, target, "replica b");

    primary.shutdown();
    primary.join();

    // Failover to replica a; replica b keeps following a dead primary
    // and must still drain cleanly afterwards.
    assert_eq!(ra.promote().expect("promote").role, "primary");
    let served = sorted(
        ra.search(Interval::new(i64::MIN, i64::MAX))
            .expect("search"),
    );
    let mut expected_live = initial;
    for (mine, gone) in &acked {
        expected_live += mine.len();
        for id in mine {
            assert!(
                served.binary_search(id).is_ok(),
                "acked id {id} lost in failover"
            );
        }
        for id in gone {
            assert!(
                served.binary_search(id).is_err(),
                "deleted id {id} resurrected by failover"
            );
        }
    }
    assert_eq!(served.len(), expected_live, "live count drifted");

    ra.shutdown().expect("shutdown a");
    replica_a.join();
    rb.shutdown().expect("shutdown b");
    replica_b.join();
    if stress {
        // Success: nothing to autopsy, don't leave artifacts behind.
        let _ = std::fs::remove_dir_all(&stress_dir);
    }
}

static WAL_CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary interleaved mutation sequences applied via the
    /// log-replay path are byte-identical (seeded replay) to direct
    /// application, for every update-capable kind × K ∈ {1, 4, 7}.
    /// Per-mutation failures (unknown ids, unsupported ops) must be
    /// deterministic too — the log records the batch, not the outcome.
    #[test]
    fn log_replay_is_byte_identical_to_direct_application(
        raw in prop::collection::vec((0u8..4, 0i64..900_000, 1i64..80_000, 1u8..5), 1..24),
    ) {
        let case = WAL_CASE.fetch_add(1, Ordering::Relaxed);
        let data = irs::datagen::TAXI.generate(400, 17);
        let weights = irs::datagen::uniform_weights(data.len(), 23);
        for (kind, weighted) in [(IndexKind::Ait, false), (IndexKind::AwitDynamic, true)] {
            for shards in [1usize, 4, 7] {
                let path = std::env::temp_dir().join(format!(
                    "irs-repl-prop-{}-{case}-{kind}-{shards}.irs",
                    std::process::id()
                ));
                let build = || {
                    let mut b = Irs::builder().kind(kind).shards(shards).seed(31);
                    if weighted {
                        b = b.weights(weights.clone());
                    }
                    b.build(&data).expect("build")
                };
                let mut direct = build();
                let mut replayed = build();

                // Direct path, mirroring the server: log first, apply second.
                let mut wal = irs::WalWriter::<i64>::create(&path, 1).expect("create wal");
                for step in raw.chunks(3) {
                    let muts: Vec<Mutation<i64>> = step
                        .iter()
                        .map(|&(sel, lo, len, w)| match sel {
                            0 => Mutation::Insert { iv: Interval::new(lo, lo + len) },
                            1 => Mutation::InsertWeighted {
                                iv: Interval::new(lo, lo + len),
                                weight: w as f64,
                            },
                            _ => Mutation::Delete { id: (lo % 600) as ItemId },
                        })
                        .collect();
                    wal.append(None, &muts).expect("append");
                    let _ = direct.apply(&muts);
                }

                // Replay path: everything the log holds, in log order.
                let replay = irs::read_log::<i64>(&path).expect("read log");
                prop_assert!(replay.stopped.is_none());
                for record in &replay.records {
                    let _ = replayed.apply(&record.muts);
                }

                prop_assert_eq!(direct.len(), replayed.len());
                let queries = query_batch(&data);
                for seed in [0u64, 0x5EED] {
                    prop_assert_eq!(
                        direct.run_seeded(&queries, seed),
                        replayed.run_seeded(&queries, seed),
                        "{} K={} seed={}: log replay diverged", kind, shards, seed
                    );
                }
                std::fs::remove_file(&path).expect("cleanup");
            }
        }
    }
}
