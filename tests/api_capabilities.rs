//! API–capability consistency: for every `IndexKind` × build flavor ×
//! operation, the `Capabilities` a backend *claims* must agree with
//! what `run` actually *does* — claimed operations succeed, denied
//! operations fail with the typed unsupported errors, and nothing
//! panics. The same contract covers the mutation surface: a kind
//! claiming `update` applies inserts/deletes (and the inserted id is
//! immediately queryable), a kind denying it fails every mutation with
//! the typed `UpdateError`. Plus edge cases: empty batches and empty
//! datasets are `Ok`, not errors.

use irs::prelude::*;
use proptest::prelude::*;

fn build_client(
    kind: IndexKind,
    shards: usize,
    weighted: bool,
    data: &[Interval64],
    seed: u64,
) -> Client<i64> {
    let mut b = Irs::builder().kind(kind).shards(shards).seed(seed);
    if weighted {
        b = b.weights(irs::datagen::uniform_weights(data.len(), seed ^ 0xA1));
    }
    b.build(data).expect("valid build config")
}

/// The one query that exercises `op`, if the operation is queryable.
fn query_for(op: Operation, q: Interval64, s: usize) -> Option<Query<i64>> {
    match op {
        Operation::UniformSample => Some(Query::Sample { q, s }),
        Operation::WeightedSample => Some(Query::SampleWeighted { q, s }),
        Operation::Count => Some(Query::Count { q }),
        Operation::Search => Some(Query::Search { q }),
        Operation::Stab => Some(Query::Stab { p: q.lo }),
        Operation::Update => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Claims and outcomes agree for every kind × {unweighted, weighted}
    /// × shard flavor {monolithic, sharded} × operation, on random
    /// datasets — including the empty one — and random queries.
    #[test]
    fn capabilities_agree_with_run_outcomes(
        raw in prop::collection::vec((0i64..2_000, 0i64..300), 0..120),
        query in (0i64..2_300, 0i64..500),
        s in 1usize..24,
    ) {
        let data: Vec<Interval64> = raw
            .iter()
            .map(|&(lo, len)| Interval::new(lo, lo + len))
            .collect();
        let q = Interval::new(query.0, query.0 + query.1);
        let oracle = irs::BruteForce::new(&data);
        let hits = oracle.range_count(q);

        for kind in IndexKind::ALL {
            for weighted in [false, true] {
                for shards in [1usize, 3] {
                    let mut client = build_client(kind, shards, weighted, &data, 7);
                    let caps = client.capabilities();
                    prop_assert_eq!(caps, kind.capabilities(weighted));

                    for op in Operation::ALL {
                        let Some(query) = query_for(op, q, s) else {
                            continue;
                        };
                        let out = client.run(&[query]).pop().unwrap();
                        match (caps.supports(op), out) {
                            (true, Ok(output)) => {
                                // Claimed and delivered; sampling must
                                // honor the empty-result-is-Ok contract.
                                if let Some(ids) = output.samples() {
                                    let expect = if hits == 0 { 0 } else { s };
                                    prop_assert_eq!(
                                        ids.len(), expect,
                                        "{} w={} K={}: {} samples",
                                        kind, weighted, shards, op
                                    );
                                }
                            }
                            (false, Err(QueryError::UnsupportedOperation { op: eop, .. })) => {
                                prop_assert_eq!(eop, op);
                            }
                            (false, Err(QueryError::NotWeighted)) => {
                                prop_assert_eq!(op, Operation::WeightedSample);
                                prop_assert!(!weighted);
                            }
                            (claimed, out) => prop_assert!(
                                false,
                                "{} w={} K={}: capability claim {} for `{}` but run returned {:?}",
                                kind, weighted, shards, claimed, op, out
                            ),
                        }
                    }

                    // Mutation outcomes must match the `update` claim:
                    // a claimed insert lands (searchable under its id,
                    // removable exactly once), a denied one fails typed.
                    match (caps.update, client.insert(q)) {
                        (true, Ok(id)) => {
                            prop_assert!(client.search(q).unwrap().contains(&id));
                            prop_assert_eq!(client.remove(id), Ok(()));
                            prop_assert!(!client.search(q).unwrap().contains(&id));
                            prop_assert_eq!(
                                client.remove(id),
                                Err(UpdateError::UnknownId { id })
                            );
                        }
                        (false, Err(UpdateError::UnsupportedKind { .. })) => {}
                        (claimed, out) => prop_assert!(
                            false,
                            "{} w={} K={}: update claim {} but insert returned {:?}",
                            kind, weighted, shards, claimed, out
                        ),
                    }
                    // Weighted inserts additionally require a weighted
                    // build of a weight-capable kind.
                    let weighted_ok = caps.update && caps.weighted_sample;
                    match (weighted_ok, client.insert_weighted(q, 2.5)) {
                        (true, Ok(id)) => prop_assert_eq!(client.remove(id), Ok(())),
                        (false, Err(UpdateError::UnsupportedKind { .. }))
                        | (false, Err(UpdateError::NotWeighted)) => {}
                        (claimed, out) => prop_assert!(
                            false,
                            "{} w={} K={}: weighted-update claim {} but insert returned {:?}",
                            kind, weighted, shards, claimed, out
                        ),
                    }
                    if weighted_ok {
                        // Bad weights bounce off the shared gate.
                        match client.insert_weighted(q, f64::NAN) {
                            Err(UpdateError::InvalidWeight { .. }) => {}
                            other => prop_assert!(false, "NaN weight accepted: {:?}", other),
                        }
                    }
                }
            }
        }
    }
}

/// An empty batch is answered with an empty result vector — no worker
/// round-trip, no error — on every backend.
#[test]
fn empty_batches_yield_empty_results() {
    let data = irs::datagen::TAXI.generate(200, 5);
    for shards in [1usize, 4] {
        let client = build_client(IndexKind::Ait, shards, false, &data, 1);
        assert!(client.run(&[]).is_empty());
        assert!(client.run_seeded(&[], 9).is_empty());
    }
    let engine = Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(2)).unwrap();
    assert!(engine.run(&[]).is_empty());
}

/// An empty dataset builds on every kind and answers every supported
/// operation with `Ok` empties — never an error, never a panic.
#[test]
fn empty_datasets_answer_ok_and_empty() {
    let data: Vec<Interval64> = Vec::new();
    let q = Interval::new(10, 90);
    for kind in IndexKind::ALL {
        for shards in [1usize, 3] {
            for weighted in [false, true] {
                let client = build_client(kind, shards, weighted, &data, 3);
                assert!(client.is_empty());
                assert_eq!(client.count(q).unwrap(), 0, "{kind} K={shards}");
                assert!(client.search(q).unwrap().is_empty(), "{kind} K={shards}");
                assert!(client.stab(50).unwrap().is_empty(), "{kind} K={shards}");
                if client.capabilities().uniform_sample {
                    assert!(
                        client.sample(q, 16).unwrap().is_empty(),
                        "{kind} K={shards}"
                    );
                    // Streams over an empty support end immediately,
                    // with no error recorded.
                    let mut stream = client.sample_stream(q).unwrap();
                    assert_eq!(stream.next(), None);
                    assert!(stream.error().is_none());
                }
                if client.capabilities().weighted_sample {
                    assert!(
                        client.sample_weighted(q, 16).unwrap().is_empty(),
                        "{kind} K={shards}"
                    );
                }
            }
        }
    }
}

/// `supported_ops` enumerates exactly the claimed subset, and the
/// capability matrix is self-consistent across the facade's reporters
/// (kind-level, engine-level, client-level).
#[test]
fn capability_reporters_are_consistent() {
    let data = irs::datagen::TAXI.generate(300, 9);
    let weights = irs::datagen::uniform_weights(data.len(), 11);
    for kind in IndexKind::ALL {
        for weighted in [false, true] {
            let kind_caps = kind.capabilities(weighted);
            let config = EngineConfig::new(kind).shards(2);
            let engine = if weighted {
                Engine::try_new_weighted(&data, &weights, config).unwrap()
            } else {
                Engine::try_new(&data, config).unwrap()
            };
            assert_eq!(engine.capabilities(), kind_caps);
            let client = build_client(kind, 1, weighted, &data, 13);
            assert_eq!(client.capabilities(), kind_caps);
            for op in kind_caps.supported_ops() {
                assert!(kind_caps.supports(op));
            }
            // Every kind answers the read-only core three.
            for op in [Operation::Count, Operation::Search, Operation::Stab] {
                assert!(kind_caps.supports(op), "{kind} must support {op}");
            }
        }
    }
}
