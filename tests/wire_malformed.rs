//! Hostile-input hardening: raw TCP streams throwing garbage at a live
//! `irs-server`. Every malformed input must come back as a *typed* wire
//! error (or a clean close once the stream has lost sync) — never a
//! panic, never a giant allocation — and the server must keep serving
//! well-formed clients afterwards.

use irs::prelude::*;
use irs::wire::frame::{read_frame_blocking, write_frame, FrameReader, MAX_PAYLOAD, WIRE_MAGIC};
use irs::wire::message::{decode_message, encode_message};
use irs::wire::{Request, Response, WireCollectionSpec};
use std::io::Write;
use std::net::{TcpListener, TcpStream};

fn serve_small() -> irs::ServerHandle<i64> {
    let data = irs::datagen::TAXI.generate(500, 3);
    let client = Irs::builder()
        .kind(IndexKind::Ait)
        .seed(5)
        .build(&data)
        .expect("build");
    irs::serve(client, ("127.0.0.1", 0)).expect("serve")
}

/// Sends raw bytes, returns the server's one response frame (decoded),
/// or `None` if the server closed without answering.
fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write");
    // Half-close: the server must answer (or close) without ever
    // receiving another byte — crucial for the truncated-frame cases.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown write");
    let mut reader = FrameReader::new();
    let payload = read_frame_blocking(&mut reader, &mut stream).ok()?;
    Some(decode_message::<Response>(&payload).expect("server responses always decode"))
}

fn expect_error(resp: Option<Response>, code: ErrorCode, what: &str) {
    match resp {
        Some(Response::Error(e)) => assert_eq!(e.code, code, "{what}: {e}"),
        other => panic!("{what}: expected Error({code:?}), got {other:?}"),
    }
}

/// The server must still answer a well-formed client.
fn assert_healthy(addr: std::net::SocketAddr) {
    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    remote.health().expect("server must stay healthy");
    assert_eq!(
        remote.count(Interval::new(i64::MIN, i64::MAX)).unwrap(),
        500
    );
}

#[test]
fn garbage_and_truncation_get_typed_errors_and_the_server_survives() {
    let handle = serve_small();
    let addr = handle.local_addr();

    // 1. Garbage magic — e.g. an HTTP request aimed at our port.
    expect_error(
        send_raw(addr, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"),
        ErrorCode::BadFrame,
        "http garbage",
    );
    assert_healthy(addr);

    // 2. Oversized declared length: refused from the header alone —
    //    the server must answer without waiting for (or allocating)
    //    4 GiB of payload.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&WIRE_MAGIC);
    oversized.extend_from_slice(&u32::MAX.to_le_bytes());
    expect_error(
        send_raw(addr, &oversized),
        ErrorCode::FrameTooLarge,
        "oversized declared length",
    );
    // Boundary: one byte over the cap is still refused.
    let mut boundary = Vec::new();
    boundary.extend_from_slice(&WIRE_MAGIC);
    boundary.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    expect_error(
        send_raw(addr, &boundary),
        ErrorCode::FrameTooLarge,
        "cap + 1",
    );
    assert_healthy(addr);

    // 3. Truncated frame: a valid header promising more payload than
    //    ever arrives, then a close.
    let mut truncated = Vec::new();
    truncated.extend_from_slice(&WIRE_MAGIC);
    truncated.extend_from_slice(&1000u32.to_le_bytes());
    truncated.extend_from_slice(&[0u8; 10]);
    expect_error(
        send_raw(addr, &truncated),
        ErrorCode::FrameTruncated,
        "truncated frame",
    );
    assert_healthy(addr);

    // 4. Corrupted payload: well-formed frame, flipped byte, bad CRC.
    let mut frame = Vec::new();
    write_frame(&mut frame, &encode_message(&Request::<i64>::Health)).expect("frame");
    let mid = frame.len() - 5; // inside the payload
    frame[mid] ^= 0x20;
    expect_error(send_raw(addr, &frame), ErrorCode::FrameChecksum, "bad crc");
    assert_healthy(addr);

    // 5. Valid frame, garbage message: an unknown request tag.
    let mut frame = Vec::new();
    write_frame(&mut frame, &[0x77, 1, 2, 3]).expect("frame");
    expect_error(
        send_raw(addr, &frame),
        ErrorCode::UnknownMessage,
        "unknown request tag",
    );
    assert_healthy(addr);

    // 6. Valid frame and tag, truncated body (Run with no fields).
    let mut frame = Vec::new();
    write_frame(&mut frame, &[3]).expect("frame");
    expect_error(
        send_raw(addr, &frame),
        ErrorCode::BadMessage,
        "truncated body",
    );
    assert_healthy(addr);

    // 7. Wrong endpoint type: a u32 client against an i64 server.
    let mut remote = RemoteClient::<u32>::connect(addr).expect("connect");
    let err = remote
        .count(Interval::new(0u32, 10u32))
        .expect_err("wrong endpoint must be refused");
    assert_eq!(err.code, ErrorCode::PersistEndpointMismatch);
    assert_healthy(addr);

    // 8. Empty connections and half-open writes don't wedge anything.
    drop(TcpStream::connect(addr).expect("connect"));
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&WIRE_MAGIC[..2]).expect("write");
        // Dropped mid-header: the server sees EOF mid-frame.
    }
    assert_healthy(addr);

    // After all that abuse, the protocol-error counter has been
    // counting and the server drains cleanly.
    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    let stats = remote.stats().expect("stats");
    assert!(
        stats.protocol_errors >= 6,
        "expected counted protocol errors, got {}",
        stats.protocol_errors
    );
    remote.shutdown().expect("shutdown");
    handle.join();
}

/// Replication requests against a server that keeps no log (and raw
/// garbage on the replication tags) are typed refusals — never a
/// wedge, never a panic — and the server keeps serving afterwards.
#[test]
fn replication_requests_on_a_plain_server_are_typed_refusals() {
    let handle = serve_small();
    let addr = handle.local_addr();

    // A plain server reports its role instead of refusing status.
    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    assert_eq!(
        remote.replication_status().expect("status").role,
        "none",
        "a log-less server has no replication role"
    );

    // Promote needs a following replica; snapshot-fetch and subscribe
    // need a log-keeping primary.
    let err = remote.promote().expect_err("promote must be refused");
    assert_eq!(err.code, ErrorCode::ReplicationNotReplica, "{err}");
    let dl = std::env::temp_dir().join(format!("irs-wm-fetch-{}", std::process::id()));
    let err = remote
        .fetch_snapshot(&dl)
        .expect_err("fetch-snapshot must be refused");
    assert_eq!(err.code, ErrorCode::ReplicationNotPrimary, "{err}");
    let _ = std::fs::remove_dir_all(&dl);
    let err = RemoteClient::<i64>::connect(addr)
        .expect("connect")
        .subscribe(1)
        .expect_err("subscribe must be refused");
    assert_eq!(err.code, ErrorCode::ReplicationNotPrimary, "{err}");
    assert_healthy(addr);

    // Truncated Subscribe body: the tag alone, no endpoint, no seq.
    let mut frame = Vec::new();
    write_frame(&mut frame, &[17]).expect("frame");
    expect_error(
        send_raw(addr, &frame),
        ErrorCode::BadMessage,
        "truncated subscribe body",
    );
    assert_healthy(addr);

    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    remote.shutdown().expect("shutdown");
    handle.join();
}

/// A malicious "primary" streaming a snapshot chunk whose path climbs
/// out of the bootstrap directory must be refused by the client with a
/// typed protocol error — and nothing may be written outside the
/// directory.
#[test]
fn snapshot_chunk_path_escape_is_refused_by_the_client() {
    use irs::wire::{ReplicationStatus, SnapshotChunk};

    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            let mut reader = FrameReader::new();
            // One FetchSnapshot request, answered with a well-formed ack
            // followed by a chunk aimed at the parent directory.
            let _ = read_frame_blocking(&mut reader, &mut stream);
            for resp in [
                Response::Replication(ReplicationStatus {
                    role: "primary".to_string(),
                    last_seq: 1,
                    log_start_seq: 1,
                    primary: None,
                }),
                Response::SnapshotChunk(SnapshotChunk {
                    path: "../evil.irs".to_string(),
                    offset: 0,
                    total_len: 4,
                    bytes: vec![1, 2, 3, 4],
                }),
            ] {
                let mut frame = Vec::new();
                write_frame(&mut frame, &encode_message(&resp)).expect("frame");
                if stream.write_all(&frame).is_err() {
                    break;
                }
            }
        }
    });

    let base = std::env::temp_dir().join(format!("irs-wm-escape-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dl = base.join("bootstrap");
    std::fs::create_dir_all(&dl).expect("mkdir");
    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    let err = remote
        .fetch_snapshot(&dl)
        .expect_err("escaping chunk path must be refused");
    assert_eq!(err.code, ErrorCode::BadMessage, "{err}");
    assert!(
        !base.join("evil.irs").exists(),
        "the escaping path was written outside the bootstrap directory"
    );
    drop(remote);
    server.join().expect("fake server");
    let _ = std::fs::remove_dir_all(&base);
}

/// A fake server answering every request on one connection with the
/// same pre-chosen response — for protocol violations a real
/// `irs-server` never commits (wrong-arity batch answers).
fn fake_server(response: Response) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            let mut reader = FrameReader::new();
            while read_frame_blocking(&mut reader, &mut stream).is_ok() {
                let mut frame = Vec::new();
                write_frame(&mut frame, &encode_message(&response)).expect("frame");
                if stream.write_all(&frame).is_err() {
                    break;
                }
            }
        }
    });
    (addr, handle)
}

/// A malicious or buggy server answering a 1-element batch with the
/// wrong number of results must produce a typed `BadMessage` protocol
/// error on the client — never a panic (these paths feed
/// `RemoteClient`'s single-result unwrappers).
#[test]
fn wrong_arity_responses_are_typed_protocol_errors() {
    // 0 results for a 1-query Run batch.
    let (addr, server) = fake_server(Response::Run(Vec::new()));
    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    let err = remote
        .count(Interval::new(0i64, 10))
        .expect_err("empty Run answer must be refused");
    assert_eq!(err.code, ErrorCode::BadMessage, "{err}");
    drop(remote);
    server.join().expect("fake server");

    // 0 results for a 1-mutation Apply batch.
    let (addr, server) = fake_server(Response::Apply(Vec::new()));
    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    let err = remote
        .insert(Interval::new(0i64, 10))
        .expect_err("empty Apply answer must be refused");
    assert_eq!(err.code, ErrorCode::BadMessage, "{err}");
    drop(remote);
    server.join().expect("fake server");

    // An empty Collections list where exactly one summary is required.
    let (addr, server) = fake_server(Response::Collections(Vec::new()));
    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    let err = remote
        .create_collection(WireCollectionSpec {
            name: "c".to_string(),
            kind: None,
            update_rate: 0.0,
            expected_extent: 0.08,
            weighted: false,
            shards: 1,
            seed: 7,
        })
        .expect_err("empty Collections answer must be refused");
    assert_eq!(err.code, ErrorCode::BadMessage, "{err}");
    drop(remote);
    server.join().expect("fake server");
}
