//! Engine correctness: for every `IndexKind` and shard count, the
//! sharded engine must answer exactly like the brute-force oracle — and
//! its cross-shard sampling must be distribution-identical to a single
//! monolithic index (multinomial allocation, Theorem 3 preserved under
//! sharding). All through the fallible `run`/`try_new` API, including
//! the shard-routed mutation path (`apply`/`insert`/`remove`).

use irs::prelude::*;
use irs::sampling::stats::{chi_square_ok, chi_square_uniformity_ok, total_variation};
use irs::BruteForce;

const SHARD_COUNTS: [usize; 3] = [1, 4, 7];
const DRAWS: usize = 120_000;

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

fn dataset(n: usize, seed: u64) -> Vec<Interval64> {
    irs::datagen::TAXI.generate(n, seed)
}

fn queries(data: &[Interval64], count: usize, seed: u64) -> Vec<Interval64> {
    let workload = irs::datagen::QueryWorkload::from_data(data);
    let mut qs = Vec::new();
    for extent in [0.5, 8.0, 32.0] {
        qs.extend(workload.generate(count, extent, seed ^ extent.to_bits()));
    }
    qs
}

/// Count / search / stab agree with the oracle for every kind × shard
/// count, and samples always come from `q ∩ X`.
#[test]
fn engine_matches_oracle_for_all_kinds_and_shard_counts() {
    let data = dataset(3000, 11);
    let bf = BruteForce::new(&data);
    let qs = queries(&data, 4, 0xE77);
    for kind in IndexKind::ALL {
        for shards in SHARD_COUNTS {
            let engine = Engine::try_new(
                &data,
                EngineConfig::new(kind)
                    .shards(shards)
                    .seed(1000 + shards as u64),
            )
            .unwrap();
            assert_eq!(engine.shard_count(), shards);
            assert_eq!(engine.len(), data.len());
            for &q in &qs {
                let expect = sorted(bf.range_search(q));
                assert_eq!(
                    sorted(engine.search(q).unwrap()),
                    expect,
                    "{kind} K={shards} search {q:?}"
                );
                assert_eq!(
                    engine.count(q).unwrap(),
                    expect.len(),
                    "{kind} K={shards} count {q:?}"
                );
                assert_eq!(
                    sorted(engine.stab(q.lo).unwrap()),
                    sorted(bf.stab(q.lo)),
                    "{kind} K={shards} stab {:?}",
                    q.lo
                );
                let samples = engine.sample(q, 64).unwrap();
                if expect.is_empty() {
                    // An empty result set is Ok-and-empty, not an error.
                    assert!(
                        samples.is_empty(),
                        "{kind} K={shards}: samples from empty set"
                    );
                } else {
                    assert_eq!(samples.len(), 64, "{kind} K={shards}: short sample");
                    for id in samples {
                        assert!(
                            data[id as usize].overlaps(&q),
                            "{kind} K={shards}: sample {id} outside {q:?}"
                        );
                    }
                }
            }
        }
    }
}

/// Sharded uniform sampling is unbiased: the empirical distribution over
/// the support passes a chi-square uniformity test — i.e. it matches the
/// distribution a single monolithic index produces (which the
/// single-index suites verify to be uniform).
#[test]
fn sharded_uniform_sampling_is_unbiased() {
    let data = dataset(2500, 23);
    let bf = BruteForce::new(&data);
    // A query whose support is big enough to be interesting and small
    // enough for per-bucket expectations to be solid.
    let q = queries(&data, 8, 0x5EED)
        .into_iter()
        .find(|&q| (100..=600).contains(&bf.range_count(q)))
        .expect("workload yields a mid-size support");
    let support = sorted(bf.range_search(q));
    for kind in IndexKind::ALL {
        for shards in SHARD_COUNTS {
            let engine =
                Engine::try_new(&data, EngineConfig::new(kind).shards(shards).seed(77)).unwrap();
            let samples = engine.sample(q, DRAWS).unwrap();
            assert_eq!(samples.len(), DRAWS);
            let mut counts = vec![0u64; support.len()];
            for id in samples {
                let pos = support.binary_search(&id).expect("sample inside support");
                counts[pos] += 1;
            }
            assert!(
                counts.iter().all(|&c| c > 0),
                "{kind} K={shards}: some support member never sampled"
            );
            let uniform = vec![1.0 / support.len() as f64; support.len()];
            assert!(
                chi_square_uniformity_ok(&counts, DRAWS as u64),
                "{kind} K={shards}: sharded uniform sampling biased (tv = {:.4})",
                total_variation(&counts, &uniform, DRAWS as u64)
            );
        }
    }
}

/// Sharded weighted sampling matches the exact weight-proportional
/// distribution for every weighted-capable kind.
#[test]
fn sharded_weighted_sampling_matches_weights() {
    let data = dataset(2500, 31);
    let weights = irs::datagen::uniform_weights(data.len(), 0xBEEF);
    let bf = BruteForce::new_weighted(&data, &weights);
    let q = queries(&data, 8, 0xFACE)
        .into_iter()
        .find(|&q| (100..=600).contains(&bf.range_count(q)))
        .expect("workload yields a mid-size support");
    let support = sorted(bf.range_search(q));
    let mass: f64 = support.iter().map(|&id| weights[id as usize]).sum();
    let expected: Vec<f64> = support
        .iter()
        .map(|&id| weights[id as usize] / mass)
        .collect();
    for kind in [
        IndexKind::Awit,
        IndexKind::AwitDynamic,
        IndexKind::Kds,
        IndexKind::HintM,
        IndexKind::IntervalTree,
    ] {
        for shards in SHARD_COUNTS {
            let engine = Engine::try_new_weighted(
                &data,
                &weights,
                EngineConfig::new(kind).shards(shards).seed(99),
            )
            .unwrap();
            let samples = engine.sample_weighted(q, DRAWS).unwrap();
            assert_eq!(samples.len(), DRAWS);
            let mut counts = vec![0u64; support.len()];
            for id in samples {
                let pos = support.binary_search(&id).expect("sample inside support");
                counts[pos] += 1;
            }
            assert!(
                chi_square_ok(&counts, &expected, DRAWS as u64),
                "{kind} K={shards}: sharded weighted sampling off-distribution (tv = {:.4})",
                total_variation(&counts, &expected, DRAWS as u64)
            );
        }
    }
}

/// Capability mismatches surface as typed errors, not wrong answers —
/// and agree with the engine's advertised `Capabilities`.
#[test]
fn unsupported_queries_yield_typed_errors() {
    let data = dataset(500, 41);
    let weights = irs::datagen::uniform_weights(data.len(), 3);
    let q = Interval::new(0, irs::datagen::TAXI.domain_size / 2);

    // AIT / AIT-V cannot sample by weight, no matter how they're built.
    for kind in [IndexKind::Ait, IndexKind::AitV] {
        let engine = Engine::try_new(&data, EngineConfig::new(kind).shards(2)).unwrap();
        assert!(!engine.capabilities().weighted_sample);
        let out = engine.run(&[Query::SampleWeighted { q, s: 5 }]);
        assert!(
            matches!(
                out[0],
                Err(QueryError::UnsupportedOperation {
                    op: Operation::WeightedSample,
                    ..
                })
            ),
            "{kind}: {:?}",
            out[0]
        );
    }

    // An AWIT holding real weights cannot serve *uniform* sampling…
    let awit = Engine::try_new_weighted(
        &data,
        &weights,
        EngineConfig::new(IndexKind::Awit).shards(2),
    )
    .unwrap();
    assert!(!awit.capabilities().uniform_sample);
    assert!(matches!(
        awit.sample(q, 5),
        Err(QueryError::UnsupportedOperation {
            op: Operation::UniformSample,
            ..
        })
    ));
    // …but an unweighted AWIT engine can (weighted ≡ uniform there).
    let awit_uniform =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Awit).shards(2)).unwrap();
    assert!(awit_uniform.capabilities().uniform_sample);
    assert_eq!(awit_uniform.sample(q, 5).unwrap().len(), 5);

    // Kinds built without weights reject weighted sampling as
    // `NotWeighted` — a rebuild-with-weights hint, not a dead end.
    let kds = Engine::try_new(&data, EngineConfig::new(IndexKind::Kds).shards(2)).unwrap();
    assert_eq!(kds.sample_weighted(q, 5), Err(QueryError::NotWeighted));
}

/// Misaligned or invalid weights are rejected at construction with the
/// offending index, before any shard index is built.
#[test]
fn invalid_weights_are_rejected_at_build() {
    let data = dataset(100, 47);
    let config = EngineConfig::new(IndexKind::Awit).shards(2);
    assert_eq!(
        Engine::try_new_weighted(&data, &[1.0; 99], config).err(),
        Some(BuildError::WeightCountMismatch {
            data: 100,
            weights: 99
        })
    );
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -2.0] {
        let mut weights = vec![1.0; 100];
        weights[63] = bad;
        match Engine::try_new_weighted(&data, &weights, config).err() {
            Some(BuildError::InvalidWeight { index: 63, .. }) => {}
            other => panic!("{bad}: expected InvalidWeight at 63, got {other:?}"),
        }
    }
}

/// Mixed batches answer in order, identically to one-by-one execution,
/// and identical seeds replay identically.
#[test]
fn batches_are_ordered_and_seeded_replay_is_exact() {
    let data = dataset(1500, 53);
    let bf = BruteForce::new(&data);
    let qs = queries(&data, 2, 0xAB);
    let engine =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(3).seed(5)).unwrap();
    let mut batch = Vec::new();
    for &q in &qs {
        batch.push(Query::Count { q });
        batch.push(Query::Search { q });
        batch.push(Query::Sample { q, s: 16 });
        batch.push(Query::Stab { p: q.hi });
    }
    let out1 = engine.run_seeded(&batch, 0xD00D);
    let out2 = engine.run_seeded(&batch, 0xD00D);
    assert_eq!(out1, out2, "seeded replay must be exact");
    for (i, &q) in qs.iter().enumerate() {
        let base = i * 4;
        assert_eq!(out1[base], Ok(QueryOutput::Count(bf.range_count(q))));
        assert_eq!(
            sorted(out1[base + 1].as_ref().unwrap().ids().unwrap().to_vec()),
            sorted(bf.range_search(q))
        );
        let samples = out1[base + 2].as_ref().unwrap().samples().unwrap();
        assert!(samples.iter().all(|&id| data[id as usize].overlaps(&q)));
        assert_eq!(
            sorted(out1[base + 3].as_ref().unwrap().ids().unwrap().to_vec()),
            sorted(bf.stab(q.hi))
        );
    }
    // Unseeded runs advance the stream: two sample batches differ.
    let a = engine.sample(qs[0], 32).unwrap();
    let b = engine.sample(qs[0], 32).unwrap();
    assert_ne!(a, b, "independent batches drew identical samples");
}

/// `run_seeded` replay must be byte-identical no matter how many caller
/// threads share the engine: the draw streams depend only on the seed,
/// the batch, and the shard count — never on scheduling. Run the same
/// seeded batch from 1, 2, and 4 concurrent callers (for every sampling
/// kind) and require every result to equal the single-threaded
/// reference. The snapshot half of the replay contract — a loaded
/// engine replays the same bytes — lives in
/// `tests/persistence_roundtrip.rs`.
#[test]
fn seeded_replay_is_identical_across_caller_thread_counts() {
    let data = dataset(2_000, 61);
    let qs = queries(&data, 2, 0xC0);
    for kind in [
        IndexKind::Ait,
        IndexKind::AitV,
        IndexKind::Awit,
        IndexKind::AwitDynamic,
        IndexKind::Kds,
    ] {
        let engine = Engine::try_new(&data, EngineConfig::new(kind).shards(3).seed(17)).unwrap();
        let mut batch = Vec::new();
        for &q in &qs {
            // 100 draws crosses the sampler's draw-chunk boundary, so a
            // chunk-size-dependent RNG consumption bug would show here.
            batch.push(Query::Sample { q, s: 100 });
            batch.push(Query::Count { q });
        }
        let reference = engine.run_seeded(&batch, 0xFEED_F00D);
        for callers in [1usize, 2, 4] {
            let outs: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..callers)
                    .map(|_| {
                        let engine = engine.clone();
                        let batch = &batch;
                        scope.spawn(move || engine.run_seeded(batch, 0xFEED_F00D))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for out in outs {
                assert_eq!(
                    out, reference,
                    "{kind}: seeded replay diverged with {callers} concurrent callers"
                );
            }
        }
    }
}

/// A shared engine must survive concurrent `run` callers — batches now
/// execute concurrently on the calling threads under shared read locks
/// (the deeper stress lives in `tests/concurrent_stress.rs`).
#[test]
fn concurrent_runs_on_shared_engine_complete() {
    let data = dataset(2000, 61);
    let bf = BruteForce::new(&data);
    let engine =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(4).seed(9)).unwrap();
    let qs = queries(&data, 3, 0xCC);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let engine = &engine;
            let qs = &qs;
            let bf = &bf;
            scope.spawn(move || {
                for round in 0..10 {
                    let q = qs[(t + round) % qs.len()];
                    let out = engine.run(&[Query::Sample { q, s: 32 }, Query::Count { q }]);
                    let expect = bf.range_count(q);
                    assert_eq!(out[1], Ok(QueryOutput::Count(expect)));
                    assert_eq!(
                        out[0].as_ref().unwrap().samples().unwrap().len(),
                        if expect == 0 { 0 } else { 32 }
                    );
                }
            });
        }
    });
}

/// More shards than intervals: empty shards must build and answer.
#[test]
fn tiny_datasets_tolerate_excess_shards() {
    let data: Vec<Interval64> = (0..5).map(|i| Interval::new(i * 10, i * 10 + 15)).collect();
    let bf = BruteForce::new(&data);
    for kind in IndexKind::ALL {
        let engine = Engine::try_new(&data, EngineConfig::new(kind).shards(7)).unwrap();
        let q = Interval::new(12, 33);
        assert_eq!(engine.count(q).unwrap(), bf.range_count(q), "{kind}");
        assert_eq!(
            sorted(engine.search(q).unwrap()),
            sorted(bf.range_search(q)),
            "{kind}"
        );
        let s = engine.sample(q, 40).unwrap();
        assert_eq!(s.len(), 40, "{kind}");
        assert!(s.iter().all(|&id| data[id as usize].overlaps(&q)), "{kind}");
    }
}

/// A dead shard worker surfaces as `ShardFailed` on the batch that
/// observes it and on every subsequent batch — and dropping the engine
/// afterwards must not hang on the dead worker's join.
#[test]
fn dead_shard_surfaces_as_error_and_drop_does_not_hang() {
    let data = dataset(800, 71);
    let engine =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(3).seed(13)).unwrap();
    let q = Interval::new(0, irs::datagen::TAXI.domain_size / 2);
    // Healthy first.
    assert!(engine.count(q).is_ok());

    engine.crash_shard_for_tests(1);

    // The next batch reports the dead shard on every query…
    let out = engine.run(&[Query::Count { q }, Query::Sample { q, s: 8 }]);
    for r in &out {
        assert_eq!(r, &Err(QueryError::ShardFailed { shard: 1 }), "{out:?}");
    }
    // …and keeps reporting it (no silent partial answers later).
    assert_eq!(
        engine.sample(q, 4),
        Err(QueryError::ShardFailed { shard: 1 })
    );
    assert_eq!(engine.count(q), Err(QueryError::ShardFailed { shard: 1 }));

    // Drop must return: live workers exit on shutdown, the dead one has
    // already unwound. (A hang here fails the test by timeout.)
    drop(engine);
}

/// Engine-level mutation routing: inserts spread to the least-loaded
/// shard, ids decode back to the owning shard for deletes, and the
/// global-id scheme stays collision-free under churn.
#[test]
fn engine_mutations_route_and_ids_stay_stable() {
    let data = dataset(1000, 83);
    let shards = 4;
    let engine = Engine::try_new(
        &data,
        EngineConfig::new(IndexKind::Ait).shards(shards).seed(3),
    )
    .unwrap();
    assert_eq!(engine.shard_lens().iter().sum::<usize>(), data.len());

    // Inserts balance: after K inserts into balanced shards, every
    // shard gained exactly one.
    let before = engine.shard_lens();
    let ids: Vec<ItemId> = (0..shards)
        .map(|i| {
            engine
                .insert(Interval::new(i as i64 * 10, i as i64 * 10 + 5))
                .unwrap()
        })
        .collect();
    for (k, (&b, a)) in before.iter().zip(engine.shard_lens()).enumerate() {
        assert_eq!(a, b + 1, "shard {k} load after round-robin of inserts");
    }
    // Ids are fresh (no collision with build-time ids) and distinct.
    let mut seen: Vec<ItemId> = ids.clone();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), ids.len());
    for &id in &ids {
        assert!(
            (id as usize) >= data.len(),
            "inserted id {id} collides with build-time ids"
        );
    }

    // Each inserted interval is immediately searchable under its id,
    // and the id routes its delete back to the right shard.
    for (i, &id) in ids.iter().enumerate() {
        let q = Interval::new(i as i64 * 10, i as i64 * 10 + 5);
        assert!(engine.search(q).unwrap().contains(&id));
        assert_eq!(engine.remove(id), Ok(()));
        assert!(!engine.search(q).unwrap().contains(&id));
        // A retired id is gone for good.
        assert_eq!(engine.remove(id), Err(UpdateError::UnknownId { id }));
    }
    assert_eq!(engine.len(), data.len());

    // Batched pooled inserts report ids in input order and stay
    // queryable; mixed `apply` batches answer in order.
    let fresh: Vec<Interval64> = (0..40).map(|i| Interval::new(i * 3, i * 3 + 9)).collect();
    let batch_ids = engine.extend_batch(&fresh).unwrap();
    assert_eq!(batch_ids.len(), fresh.len());
    for (iv, &id) in fresh.iter().zip(&batch_ids) {
        assert!(engine.search(*iv).unwrap().contains(&id), "{iv:?}");
    }
    let out = engine.apply(&[
        Mutation::Insert {
            iv: Interval::new(7, 8),
        },
        Mutation::Delete { id: batch_ids[0] },
        Mutation::Delete { id: 999_999 },
    ]);
    assert!(matches!(out[0], Ok(UpdateOutput::Inserted(_))));
    assert_eq!(out[1], Ok(UpdateOutput::Removed));
    assert_eq!(out[2], Err(UpdateError::UnknownId { id: 999_999 }));
}

/// Mutations on a static kind fail typed without touching any worker,
/// and a dead shard surfaces as `UpdateError::ShardFailed` on the
/// mutation path exactly as `QueryError::ShardFailed` does on queries.
#[test]
fn engine_mutation_errors_are_typed() {
    let data = dataset(400, 89);
    let kds = Engine::try_new(&data, EngineConfig::new(IndexKind::Kds).shards(2)).unwrap();
    assert!(!kds.capabilities().update);
    assert!(matches!(
        kds.insert(Interval::new(1, 2)),
        Err(UpdateError::UnsupportedKind { kind: "kds", .. })
    ));

    // Weighted insert into an unweighted dynamic build: NotWeighted.
    let dyn_uniform =
        Engine::try_new(&data, EngineConfig::new(IndexKind::AwitDynamic).shards(2)).unwrap();
    assert_eq!(
        dyn_uniform.insert_weighted(Interval::new(1, 2), 3.0),
        Err(UpdateError::NotWeighted)
    );
    // Weighted insert into AIT: structurally unsupported.
    let ait = Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(2)).unwrap();
    assert!(matches!(
        ait.insert_weighted(Interval::new(1, 2), 3.0),
        Err(UpdateError::UnsupportedKind { kind: "ait", .. })
    ));
    // Bad weights bounce off the shared gate before any routing.
    let weights = irs::datagen::uniform_weights(data.len(), 5);
    let dyn_weighted = Engine::try_new_weighted(
        &data,
        &weights,
        EngineConfig::new(IndexKind::AwitDynamic).shards(2),
    )
    .unwrap();
    assert_eq!(
        dyn_weighted.insert_weighted(Interval::new(1, 2), -1.0),
        Err(UpdateError::InvalidWeight { value: -1.0 })
    );

    // A dead shard errs mutations with the same persistence as queries.
    let broken =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(3).seed(7)).unwrap();
    broken.crash_shard_for_tests(1);
    let out = broken.apply(&[
        Mutation::Insert {
            iv: Interval::new(0, 1),
        },
        Mutation::Insert {
            iv: Interval::new(2, 3),
        },
        Mutation::Insert {
            iv: Interval::new(4, 5),
        },
    ]);
    assert!(
        out.iter()
            .any(|r| matches!(r, Err(UpdateError::ShardFailed { shard: 1 }))),
        "least-loaded routing must eventually hit the dead shard: {out:?}"
    );

    // `extend_batch` is all-or-nothing: with a dead shard in the mix it
    // errs, rolls back the inserts that landed on healthy shards, and
    // leaves the live count (and the query results) unchanged.
    let len_before = broken.len();
    let batch: Vec<Interval64> = (0..6).map(|i| Interval::new(-1000 + i, -995 + i)).collect();
    let out = broken.extend_batch(&batch);
    assert!(
        matches!(out, Err(UpdateError::ShardFailed { .. })),
        "{out:?}"
    );
    // The inserts that landed on healthy shards were rolled back, so
    // the live count — total and per shard — is unchanged. (Queries
    // can't confirm it: the dead shard errs every batch by design.)
    assert_eq!(broken.len(), len_before, "rollback must restore len");
    assert_eq!(
        broken.shard_lens().iter().sum::<usize>(),
        len_before,
        "per-shard loads must match after rollback: {:?}",
        broken.shard_lens()
    );
}
