//! Snapshot persistence: for every `IndexKind` × shard count, a
//! saved-then-loaded engine must be *byte-equivalent* to the original —
//! `run_seeded` reproduces the exact draws — and the mutable kinds must
//! honour the global-id contract across the restart. Corrupted
//! snapshots (truncation, foreign bytes, bit flips, future versions)
//! must each surface the right typed `PersistError`, never a panic.

use irs::prelude::*;
use irs::BruteForce;
use std::path::PathBuf;

const SHARD_COUNTS: [usize; 3] = [1, 4, 7];

/// A unique, self-cleaning snapshot directory per test case.
struct SnapDir(PathBuf);

impl SnapDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("irs-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for SnapDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dataset(n: usize, seed: u64) -> Vec<Interval64> {
    irs::datagen::TAXI.generate(n, seed)
}

fn queries(data: &[Interval64], count: usize, seed: u64) -> Vec<Interval64> {
    let workload = irs::datagen::QueryWorkload::from_data(data);
    let mut qs = Vec::new();
    for extent in [0.5, 8.0, 32.0] {
        qs.extend(workload.generate(count, extent, seed ^ extent.to_bits()));
    }
    qs
}

/// A mixed batch exercising every operation the kind supports.
fn batch(data: &[Interval64], weighted: bool) -> Vec<Query<i64>> {
    queries(data, 3, 0x5A7E)
        .into_iter()
        .flat_map(|q| {
            [
                Query::Count { q },
                Query::Search { q },
                Query::Stab { p: q.lo },
                if weighted {
                    Query::SampleWeighted { q, s: 32 }
                } else {
                    Query::Sample { q, s: 32 }
                },
            ]
        })
        .collect()
}

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

/// Every kind × K ∈ {1, 4, 7}: save → load → `run_seeded` must match
/// the original byte for byte (samples included), along with the
/// engine's queryable metadata.
#[test]
fn every_kind_and_shard_count_replays_byte_identically() {
    let data = dataset(2500, 21);
    for kind in IndexKind::ALL {
        for shards in SHARD_COUNTS {
            let dir = SnapDir::new(&format!("replay-{kind}-{shards}"));
            let engine = Engine::try_new(
                &data,
                EngineConfig::new(kind)
                    .shards(shards)
                    .seed(77 + shards as u64),
            )
            .unwrap();
            engine.save(dir.path()).unwrap();
            let loaded: Engine<i64> = Engine::load(dir.path()).unwrap();
            assert_eq!(loaded.kind(), kind);
            assert_eq!(loaded.shard_count(), shards);
            assert_eq!(loaded.len(), engine.len());
            assert_eq!(loaded.shard_lens(), engine.shard_lens());
            assert_eq!(loaded.capabilities(), engine.capabilities());
            let qs = batch(&data, false);
            for seed in [0u64, 0xDEAD_BEEF, 42] {
                assert_eq!(
                    engine.run_seeded(&qs, seed),
                    loaded.run_seeded(&qs, seed),
                    "{kind} K={shards} seed={seed}: loaded engine diverged"
                );
            }
            // The *unseeded* stream also continues where the original's
            // would: both engines sit at the same batch counter.
            assert_eq!(engine.run(&qs), loaded.run(&qs), "{kind} K={shards} run()");
        }
    }
}

/// Weighted builds (every kind that samples by weight) replay their
/// weighted draws byte-identically too.
#[test]
fn weighted_builds_replay_byte_identically() {
    let data = dataset(1800, 22);
    let weights: Vec<f64> = (0..data.len()).map(|i| 1.0 + (i % 9) as f64).collect();
    for kind in [
        IndexKind::Awit,
        IndexKind::AwitDynamic,
        IndexKind::Kds,
        IndexKind::HintM,
        IndexKind::IntervalTree,
    ] {
        for shards in SHARD_COUNTS {
            let dir = SnapDir::new(&format!("weighted-{kind}-{shards}"));
            let engine = Engine::try_new_weighted(
                &data,
                &weights,
                EngineConfig::new(kind).shards(shards).seed(5),
            )
            .unwrap();
            engine.save(dir.path()).unwrap();
            let loaded: Engine<i64> = Engine::load(dir.path()).unwrap();
            assert!(loaded.is_weighted());
            let qs = batch(&data, true);
            assert_eq!(
                engine.run_seeded(&qs, 0xFEED),
                loaded.run_seeded(&qs, 0xFEED),
                "{kind} K={shards}: weighted replay diverged"
            );
        }
    }
}

/// A snapshot taken *mid-churn* (pool entries buffered, tombstones
/// live, ids retired) restores the exact mutable state: saved draws
/// replay, pre-save ids resolve, deletes of retired ids still fail, and
/// post-load mutations agree with a brute-force shadow.
#[test]
fn update_capable_kinds_keep_ids_and_oracle_agreement_across_restart() {
    let data = dataset(1200, 23);
    for kind in [IndexKind::Ait, IndexKind::AwitDynamic] {
        for shards in SHARD_COUNTS {
            let dir = SnapDir::new(&format!("churn-{kind}-{shards}"));
            let engine =
                Engine::try_new(&data, EngineConfig::new(kind).shards(shards).seed(9)).unwrap();
            // Shadow: (interval, global id) of every live interval.
            let mut shadow: Vec<(Interval64, ItemId)> = data
                .iter()
                .enumerate()
                .map(|(g, &iv)| (iv, g as ItemId))
                .collect();
            // Churn before the save: buffered batch insert + one-by-one
            // inserts + deletes, so pools/tombstones are non-empty.
            let fresh: Vec<Interval64> = (0..40)
                .map(|i| Interval::new(1000 * i, 1000 * i + 5000))
                .collect();
            let ids = engine.extend_batch(&fresh).unwrap();
            shadow.extend(fresh.iter().copied().zip(ids.iter().copied()));
            let lone = engine.insert(Interval::new(77, 99)).unwrap();
            shadow.push((Interval::new(77, 99), lone));
            let retired: Vec<ItemId> = (0..60).map(|g| g as ItemId).collect();
            for &id in &retired {
                engine.remove(id).unwrap();
                shadow.retain(|&(_, sid)| sid != id);
            }

            engine.save(dir.path()).unwrap();
            let loaded: Engine<i64> = Engine::load(dir.path()).unwrap();
            assert_eq!(loaded.len(), shadow.len());

            // Byte-equivalent replay of the churned state.
            let qs = batch(&data, false);
            assert_eq!(
                engine.run_seeded(&qs, 0xAB),
                loaded.run_seeded(&qs, 0xAB),
                "{kind} K={shards}: churned replay diverged"
            );

            // The id contract spans the restart: a pre-save id deletes
            // cleanly, a retired id is still unknown, and new ids never
            // collide with anything ever issued.
            assert_eq!(
                loaded.remove(retired[0]),
                Err(UpdateError::UnknownId { id: retired[0] }),
                "{kind} K={shards}: retired id resurrected"
            );
            loaded.remove(lone).unwrap();
            shadow.retain(|&(_, sid)| sid != lone);
            let newcomer = Interval::new(500_000, 501_000);
            let new_id = loaded.insert(newcomer).unwrap();
            assert!(
                !retired.contains(&new_id) && new_id != lone,
                "{kind} K={shards}: id {new_id} reissued after restart"
            );
            shadow.push((newcomer, new_id));

            // Post-load mutations keep full oracle agreement.
            let shadow_data: Vec<Interval64> = shadow.iter().map(|&(iv, _)| iv).collect();
            let bf = BruteForce::new(&shadow_data);
            for &q in &queries(&data, 3, 0x0DD5 ^ 0x1234) {
                let expect: Vec<ItemId> = sorted(
                    bf.range_search(q)
                        .into_iter()
                        .map(|pos| shadow[pos as usize].1)
                        .collect(),
                );
                assert_eq!(
                    sorted(loaded.search(q).unwrap()),
                    expect,
                    "{kind} K={shards}: post-load search {q:?}"
                );
                assert_eq!(loaded.count(q).unwrap(), expect.len());
                for id in loaded.sample(q, 48).unwrap() {
                    assert!(
                        expect.binary_search(&id).is_ok(),
                        "{kind} K={shards}: sample {id} outside live q ∩ X"
                    );
                }
            }
        }
    }
}

/// The client facade saves/loads over both backends, and the layouts
/// interoperate: an engine snapshot loads through a client.
#[test]
fn client_roundtrips_on_both_backends_and_interoperates() {
    let data = dataset(1500, 24);
    for shards in [1usize, 4] {
        let dir = SnapDir::new(&format!("client-{shards}"));
        let client = Irs::builder()
            .kind(IndexKind::AitV)
            .shards(shards)
            .seed(13)
            .build(&data)
            .unwrap();
        client.save(dir.path()).unwrap();
        let loaded = Client::<i64>::load(dir.path()).unwrap();
        assert_eq!(loaded.shard_count(), shards);
        assert_eq!(loaded.len(), client.len());
        let qs = batch(&data, false);
        assert_eq!(client.run_seeded(&qs, 7), loaded.run_seeded(&qs, 7));
        if shards > 1 {
            // Same layout, other handle: the engine reads it directly.
            let engine: Engine<i64> = Engine::load(dir.path()).unwrap();
            assert_eq!(client.run_seeded(&qs, 7), engine.run_seeded(&qs, 7));
        }
    }
}

/// Corruption taxonomy: each kind of damage yields its typed
/// `PersistError` — and never a panic — for every file in a snapshot.
#[test]
fn corruption_surfaces_typed_errors_never_panics() {
    let data = dataset(600, 25);
    let dir = SnapDir::new("corruption");
    let engine =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(2).seed(3)).unwrap();
    engine.save(dir.path()).unwrap();
    let manifest = dir.path().join("manifest.irs");
    let shard1 = dir.path().join("shard-0001.irs");
    let load = |dir: &std::path::Path| Engine::<i64>::load(dir).map(|_| ());

    for target in [&manifest, &shard1] {
        let pristine = std::fs::read(target).unwrap();

        // Truncated mid-payload.
        std::fs::write(target, &pristine[..pristine.len() - pristine.len() / 3]).unwrap();
        assert!(
            matches!(load(dir.path()), Err(PersistError::Truncated { .. })),
            "{target:?}: truncation not typed"
        );

        // Bad magic.
        let mut bad = pristine.clone();
        bad[..4].copy_from_slice(b"JUNK");
        std::fs::write(target, &bad).unwrap();
        assert!(
            matches!(load(dir.path()), Err(PersistError::BadMagic { .. })),
            "{target:?}: bad magic not typed"
        );

        // One payload byte flipped → the section CRC catches it.
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(target, &flipped).unwrap();
        assert!(
            matches!(
                load(dir.path()),
                Err(PersistError::ChecksumMismatch { .. } | PersistError::Truncated { .. })
            ),
            "{target:?}: bit flip not typed"
        );

        // A future format version is refused, not misread.
        let mut future = pristine.clone();
        future[8] = 0xFE;
        future[9] = 0xFF;
        std::fs::write(target, &future).unwrap();
        assert_eq!(
            load(dir.path()),
            Err(PersistError::UnsupportedVersion {
                found: u16::from_le_bytes([0xFE, 0xFF]),
                supported: 1
            }),
            "{target:?}: future version not typed"
        );

        std::fs::write(target, &pristine).unwrap();
        load(dir.path()).expect("restored snapshot must load again");
    }
}

/// Cross-checks beyond byte damage: wrong endpoint type, unknown kind,
/// a shard file swapped in from a different snapshot, and a missing
/// directory are all typed refusals.
#[test]
fn mismatches_are_typed_refusals() {
    let data = dataset(500, 26);
    let dir = SnapDir::new("mismatch");
    let engine =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Kds).shards(2).seed(4)).unwrap();
    engine.save(dir.path()).unwrap();

    // Endpoint type: saved as i64, loaded as u64 (same width!).
    assert!(matches!(
        Engine::<u64>::load(dir.path()).map(|_| ()),
        Err(PersistError::EndpointMismatch { .. })
    ));

    // A shard from a *different* snapshot (other kind) swapped in.
    let other = SnapDir::new("mismatch-other");
    let donor =
        Engine::try_new(&data, EngineConfig::new(IndexKind::HintM).shards(2).seed(4)).unwrap();
    donor.save(other.path()).unwrap();
    let pristine = std::fs::read(dir.path().join("shard-0001.irs")).unwrap();
    std::fs::copy(
        other.path().join("shard-0001.irs"),
        dir.path().join("shard-0001.irs"),
    )
    .unwrap();
    assert!(matches!(
        Engine::<i64>::load(dir.path()).map(|_| ()),
        Err(PersistError::ManifestMismatch { .. })
    ));
    std::fs::write(dir.path().join("shard-0001.irs"), pristine).unwrap();

    // Unknown kind name in the manifest (decoded from valid framing).
    let mut manifest = irs_engine_manifest(dir.path());
    manifest.kind = "btree-of-the-future".to_string();
    irs_engine::persist::write_manifest(dir.path(), &manifest).unwrap();
    assert!(matches!(
        Engine::<i64>::load(dir.path()).map(|_| ()),
        Err(PersistError::UnknownKind { .. })
    ));

    // Missing directory → typed I/O error.
    assert!(matches!(
        Engine::<i64>::load(dir.path().join("nope")).map(|_| ()),
        Err(PersistError::Io { .. })
    ));
}

fn irs_engine_manifest(dir: &std::path::Path) -> irs::Manifest {
    irs::inspect_snapshot(dir).unwrap().manifest
}

/// A manifest claiming `weighted` over an index that carries no weight
/// arrays is refused at load — not discovered as a panic on the first
/// weighted query.
#[test]
fn weighted_flag_must_match_the_decoded_index() {
    use irs::Codec;
    let data = dataset(300, 27);
    let dir = SnapDir::new("weighted-flag");
    std::fs::create_dir_all(dir.path()).unwrap();
    let unweighted = irs::Kds::new(&data);
    let mut payload = Vec::new();
    unweighted.encode_into(&mut payload);
    let manifest = irs_engine::persist::Manifest {
        snapshot_id: 7,
        kind: "kds".to_string(),
        endpoint: "i64".to_string(),
        weighted: true, // lies: the payload has no weight arrays
        shards: 1,
        seed: 0,
        batch_counter: 0,
        stream_counter: 0,
        len: data.len(),
        shard_lens: vec![data.len()],
    };
    let header = irs_engine::persist::ShardHeader {
        snapshot_id: 7,
        kind: manifest.kind.clone(),
        endpoint: manifest.endpoint.clone(),
        shard: 0,
        shards: 1,
        weighted: true,
    };
    irs_engine::persist::write_shard_file(dir.path(), &header, &payload).unwrap();
    irs_engine::persist::write_manifest(dir.path(), &manifest).unwrap();
    assert_eq!(
        Engine::<i64>::load(dir.path()).map(|_| ()),
        Err(PersistError::Corrupt {
            what: "manifest says weighted, but the index carries no weights"
        })
    );
}

/// An interrupted re-save (new shard files, old manifest — or the
/// reverse) is detected by the per-save-run snapshot id, even when both
/// snapshots share kind, shard count, and flags.
#[test]
fn mixed_save_runs_are_detected_by_snapshot_id() {
    let data = dataset(400, 28);
    let a = SnapDir::new("mix-a");
    let b = SnapDir::new("mix-b");
    let engine =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(2).seed(6)).unwrap();
    engine.save(a.path()).unwrap();
    engine.save(b.path()).unwrap(); // same engine, different save run
    assert_ne!(
        irs_engine_manifest(a.path()).snapshot_id,
        irs_engine_manifest(b.path()).snapshot_id,
        "each save run must get its own id"
    );
    // Simulate a save that died after rewriting one shard file.
    std::fs::copy(
        b.path().join("shard-0001.irs"),
        a.path().join("shard-0001.irs"),
    )
    .unwrap();
    assert!(matches!(
        Engine::<i64>::load(a.path()).map(|_| ()),
        Err(PersistError::ManifestMismatch { .. })
    ));
}

/// Sample streams created after a restart must not replay the draw
/// sequences of streams created before the save (the stream counter is
/// part of the manifest).
#[test]
fn post_restart_streams_are_fresh_not_replays() {
    let data = dataset(800, 29);
    // Both backends: the mono client writes the manifest itself; the
    // sharded client must thread its counter through the engine's save.
    for shards in [1usize, 4] {
        let dir = SnapDir::new(&format!("streams-{shards}"));
        let client = Irs::builder()
            .kind(IndexKind::Ait)
            .shards(shards)
            .seed(31)
            .build(&data)
            .unwrap();
        let q = queries(&data, 1, 0xF00D)[0];
        let mut first_pre = client.sample_stream(q).unwrap();
        let pre: Vec<ItemId> = (0..64).map(|_| first_pre.next().unwrap()).collect();
        drop(first_pre);
        let _second = client.sample_stream(q).unwrap(); // counter advances to 2
        client.save(dir.path()).unwrap();
        assert_eq!(
            irs_engine_manifest(dir.path()).stream_counter,
            2,
            "shards={shards}"
        );
        let loaded = Client::<i64>::load(dir.path()).unwrap();
        let mut first_post = loaded.sample_stream(q).unwrap();
        let post: Vec<ItemId> = (0..64).map(|_| first_post.next().unwrap()).collect();
        assert_ne!(
            pre, post,
            "shards={shards}: post-restart stream replayed a pre-save stream's draws"
        );
    }
}
