//! The `Irs::builder()` facade: construction validation, oracle
//! agreement through both backends (monolithic and sharded), and the
//! acceptance bar for the redesign — sampling through the `Client` is
//! distribution-identical to the direct index path (chi-square suites
//! pass through the facade on both backends), one-shot and streamed.

use irs::prelude::*;
use irs::sampling::stats::{chi_square_ok, chi_square_uniformity_ok, total_variation};
use irs::BruteForce;

const DRAWS: usize = 120_000;

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

fn dataset(n: usize, seed: u64) -> Vec<Interval64> {
    irs::datagen::TAXI.generate(n, seed)
}

/// A query whose support is big enough to be interesting and small
/// enough for per-bucket chi-square expectations to be solid.
fn mid_size_query(data: &[Interval64], bf: &BruteForce<i64>, seed: u64) -> Interval64 {
    let workload = irs::datagen::QueryWorkload::from_data(data);
    workload
        .generate(24, 8.0, seed)
        .into_iter()
        .find(|&q| (100..=600).contains(&bf.range_count(q)))
        .expect("workload yields a mid-size support")
}

/// The builder rejects bad weights up front with the offending index,
/// identically for both backends.
#[test]
fn builder_validates_weights_before_building() {
    let data = dataset(120, 3);
    for shards in [1usize, 4] {
        let err = Irs::builder()
            .kind(IndexKind::Awit)
            .shards(shards)
            .weights(vec![1.0; 60])
            .build(&data)
            .err();
        assert_eq!(
            err,
            Some(BuildError::WeightCountMismatch {
                data: 120,
                weights: 60
            })
        );
        for bad in [f64::NAN, f64::INFINITY, 0.0, -4.0] {
            let mut weights = vec![2.0; 120];
            weights[17] = bad;
            match Irs::builder()
                .kind(IndexKind::Kds)
                .shards(shards)
                .weights(weights)
                .build(&data)
                .err()
            {
                Some(BuildError::InvalidWeight { index: 17, .. }) => {}
                other => panic!("{bad} (K={shards}): expected InvalidWeight at 17, got {other:?}"),
            }
        }
    }
}

/// Count / search / stab / sample agree with the oracle for every kind
/// through both backends.
#[test]
fn client_matches_oracle_on_both_backends() {
    let data = dataset(2000, 17);
    let bf = BruteForce::new(&data);
    let workload = irs::datagen::QueryWorkload::from_data(&data);
    let qs: Vec<_> = [0.5, 8.0, 32.0]
        .into_iter()
        .flat_map(|extent| workload.generate(3, extent, 0xC1 ^ extent.to_bits()))
        .collect();
    for kind in IndexKind::ALL {
        for shards in [1usize, 4] {
            let client = Irs::builder()
                .kind(kind)
                .shards(shards)
                .seed(41 + shards as u64)
                .build(&data)
                .unwrap();
            assert_eq!(client.shard_count(), shards);
            assert_eq!(client.len(), data.len());
            for &q in &qs {
                let expect = sorted(bf.range_search(q));
                assert_eq!(
                    sorted(client.search(q).unwrap()),
                    expect,
                    "{kind} K={shards} search {q:?}"
                );
                assert_eq!(
                    client.count(q).unwrap(),
                    expect.len(),
                    "{kind} K={shards} count {q:?}"
                );
                assert_eq!(
                    sorted(client.stab(q.lo).unwrap()),
                    sorted(bf.stab(q.lo)),
                    "{kind} K={shards} stab"
                );
                let samples = client.sample(q, 48).unwrap();
                assert_eq!(samples.len(), if expect.is_empty() { 0 } else { 48 });
                assert!(samples.iter().all(|&id| data[id as usize].overlaps(&q)));
            }
        }
    }
}

/// Uniform sampling through the facade is unbiased on both backends —
/// one-shot batches and prepare-once-draw-many streams alike.
#[test]
fn client_uniform_sampling_is_unbiased_including_streams() {
    let data = dataset(2500, 23);
    let bf = BruteForce::new(&data);
    let q = mid_size_query(&data, &bf, 0x5EED);
    let support = sorted(bf.range_search(q));
    let uniform = vec![1.0 / support.len() as f64; support.len()];
    for shards in [1usize, 4] {
        let client = Irs::builder()
            .kind(IndexKind::Ait)
            .shards(shards)
            .seed(77)
            .build(&data)
            .unwrap();
        for (path, samples) in [
            ("one-shot", client.sample(q, DRAWS).unwrap()),
            (
                "stream",
                client
                    .sample_stream(q)
                    .unwrap()
                    .with_chunk(4096)
                    .take(DRAWS)
                    .collect(),
            ),
        ] {
            assert_eq!(samples.len(), DRAWS, "K={shards} {path}");
            let mut counts = vec![0u64; support.len()];
            for id in samples {
                let pos = support.binary_search(&id).expect("sample inside support");
                counts[pos] += 1;
            }
            assert!(
                chi_square_uniformity_ok(&counts, DRAWS as u64),
                "K={shards} {path}: facade sampling biased (tv = {:.4})",
                total_variation(&counts, &uniform, DRAWS as u64)
            );
        }
    }
}

/// Weighted sampling through the facade matches the exact
/// weight-proportional distribution on both backends.
#[test]
fn client_weighted_sampling_matches_weights() {
    let data = dataset(2500, 31);
    let weights = irs::datagen::uniform_weights(data.len(), 0xBEEF);
    let bf = BruteForce::new_weighted(&data, &weights);
    let q = mid_size_query(&data, &bf, 0xFACE);
    let support = sorted(bf.range_search(q));
    let mass: f64 = support.iter().map(|&id| weights[id as usize]).sum();
    let expected: Vec<f64> = support
        .iter()
        .map(|&id| weights[id as usize] / mass)
        .collect();
    for (kind, shards) in [
        (IndexKind::Awit, 1usize),
        (IndexKind::Awit, 4),
        (IndexKind::Kds, 1),
        (IndexKind::HintM, 4),
    ] {
        let client = Irs::builder()
            .kind(kind)
            .shards(shards)
            .weights(weights.clone())
            .seed(99)
            .build(&data)
            .unwrap();
        for (path, samples) in [
            ("one-shot", client.sample_weighted(q, DRAWS).unwrap()),
            (
                "stream",
                client
                    .weighted_sample_stream(q)
                    .unwrap()
                    .with_chunk(4096)
                    .take(DRAWS)
                    .collect(),
            ),
        ] {
            assert_eq!(samples.len(), DRAWS);
            let mut counts = vec![0u64; support.len()];
            for id in samples {
                let pos = support.binary_search(&id).expect("sample inside support");
                counts[pos] += 1;
            }
            assert!(
                chi_square_ok(&counts, &expected, DRAWS as u64),
                "{kind} K={shards} {path}: facade weighted sampling off (tv = {:.4})",
                total_variation(&counts, &expected, DRAWS as u64)
            );
        }
    }
}

/// Seeded runs replay identically on both backends, and unseeded runs
/// advance the draw stream (independent samples across calls, streams
/// included).
#[test]
fn seeded_replay_and_stream_independence() {
    let data = dataset(1500, 53);
    let q = mid_size_query(&data, &BruteForce::new(&data), 0xAB);
    let batch = [
        Query::Count { q },
        Query::Sample { q, s: 32 },
        Query::Search { q },
    ];
    for shards in [1usize, 4] {
        let client = Irs::builder()
            .kind(IndexKind::Ait)
            .shards(shards)
            .seed(5)
            .build(&data)
            .unwrap();
        assert_eq!(
            client.run_seeded(&batch, 0xD00D),
            client.run_seeded(&batch, 0xD00D),
            "K={shards}: seeded replay must be exact"
        );
        let a = client.sample(q, 32).unwrap();
        let b = client.sample(q, 32).unwrap();
        assert_ne!(a, b, "K={shards}: unseeded batches drew identical samples");
        let s1: Vec<ItemId> = client.sample_stream(q).unwrap().take(32).collect();
        let s2: Vec<ItemId> = client.sample_stream(q).unwrap().take(32).collect();
        assert_ne!(s1, s2, "K={shards}: successive streams drew identically");
    }
}

/// Capability errors from the facade are the same typed values the
/// engine reports, and streams refuse construction the same way.
#[test]
fn facade_capability_errors_are_typed() {
    let data = dataset(400, 67);
    let weights = irs::datagen::uniform_weights(data.len(), 2);
    let q = Interval::new(0, irs::datagen::TAXI.domain_size / 2);
    for shards in [1usize, 3] {
        // Unweighted KDS: weighted ops say NotWeighted.
        let kds = Irs::builder()
            .kind(IndexKind::Kds)
            .shards(shards)
            .build(&data)
            .unwrap();
        assert_eq!(kds.sample_weighted(q, 5), Err(QueryError::NotWeighted));
        assert_eq!(
            kds.weighted_sample_stream(q).err(),
            Some(QueryError::NotWeighted)
        );
        // Weighted AWIT: uniform ops are structurally unsupported.
        let awit = Irs::builder()
            .kind(IndexKind::Awit)
            .shards(shards)
            .weights(weights.clone())
            .build(&data)
            .unwrap();
        assert!(matches!(
            awit.sample(q, 5),
            Err(QueryError::UnsupportedOperation {
                op: Operation::UniformSample,
                ..
            })
        ));
        assert!(matches!(
            awit.sample_stream(q).err(),
            Some(QueryError::UnsupportedOperation { .. })
        ));
    }
}
