//! Update-path equivalence: an AIT maintained through arbitrary
//! insert / batch-insert / delete streams must answer exactly like an AIT
//! built from scratch over the surviving intervals — and its sampling must
//! stay uniform.

use irs::prelude::*;
use irs::sampling::stats::chi_square_uniformity_ok;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

#[test]
fn long_mixed_stream_matches_fresh_build() {
    let base = irs::datagen::BOOK.generate(2_000, 50);
    let mut ait = Ait::new(&base);
    let mut live: Vec<(Interval64, ItemId)> = base
        .iter()
        .enumerate()
        .map(|(i, &iv)| (iv, i as ItemId))
        .collect();
    let mut rng = StdRng::seed_from_u64(51);
    let fresh_pool = irs::datagen::BOOK.generate(3_000, 52);

    for (step, &iv) in fresh_pool.iter().enumerate() {
        match step % 5 {
            0 | 1 => {
                let id = ait.insert(iv);
                live.push((iv, id));
            }
            2 | 3 => {
                let id = ait.insert_buffered(iv);
                live.push((iv, id));
            }
            _ => {
                if !live.is_empty() {
                    let k = rng.random_range(0..live.len());
                    let (victim, id) = live.swap_remove(k);
                    assert!(ait.delete(victim, id), "delete {id} failed at step {step}");
                }
            }
        }
        if step % 500 == 0 {
            // Mid-stream consistency probe.
            let q = Interval::new(0, irs::datagen::BOOK.domain_size / 4);
            let expect: usize = live.iter().filter(|(x, _)| x.overlaps(&q)).count();
            assert_eq!(ait.range_count(q), expect, "count diverged at step {step}");
        }
    }
    ait.flush_pool();
    ait.validate().unwrap();
    assert_eq!(ait.len(), live.len());

    // Final check: identical answers to a brute-force over the live set.
    let workload = irs::datagen::QueryWorkload::new((0, irs::datagen::BOOK.domain_size));
    for q in workload.generate(25, 8.0, 53) {
        let expect: Vec<ItemId> = sorted(
            live.iter()
                .filter(|(x, _)| x.overlaps(&q))
                .map(|&(_, id)| id)
                .collect(),
        );
        assert_eq!(sorted(ait.range_search(q)), expect, "query {q:?}");
    }
}

#[test]
fn sampling_stays_uniform_after_updates() {
    let base: Vec<Interval64> = (0..500).map(|i| Interval::new(i, i + 100)).collect();
    let mut ait = Ait::new(&base);
    // Delete every third interval, insert replacements, leave some pooled.
    for id in (0..500u32).step_by(3) {
        assert!(ait.delete(base[id as usize], id));
    }
    for i in 0..120 {
        ait.insert(Interval::new(i * 4, i * 4 + 90));
    }
    for i in 0..10 {
        ait.insert_buffered(Interval::new(i * 40, i * 40 + 95));
    }
    assert!(
        ait.pool_len() > 0,
        "want a live pool during the sampling test"
    );

    let q = Interval::new(200, 260);
    let support = sorted(ait.range_search(q));
    assert!(support.len() > 50);
    let draws = 150_000usize;
    let mut rng = StdRng::seed_from_u64(54);
    let mut counts = vec![0u64; support.len()];
    for id in ait.sample(q, draws, &mut rng) {
        counts[support
            .binary_search(&id)
            .expect("sample outside result set")] += 1;
    }
    assert!(
        chi_square_uniformity_ok(&counts, draws as u64),
        "post-update sampling lost uniformity"
    );
}

#[test]
fn rebuild_preserves_answers() {
    let data = irs::datagen::RENFE.generate(3_000, 55);
    let mut ait = Ait::new(&data);
    let q = irs::datagen::QueryWorkload::from_data(&data).generate(1, 8.0, 56)[0];
    let before = sorted(ait.range_search(q));
    ait.rebuild();
    ait.validate().unwrap();
    assert_eq!(sorted(ait.range_search(q)), before);
}

#[test]
fn interleaved_pool_queries_see_everything() {
    let mut ait = Ait::<i64>::new(&[]);
    let mut expected = 0usize;
    for i in 0..300 {
        if i % 2 == 0 {
            ait.insert(Interval::new(i, i + 10));
        } else {
            ait.insert_buffered(Interval::new(i, i + 10));
        }
        expected += 1;
        assert_eq!(
            ait.range_count(Interval::new(-100, 1000)),
            expected,
            "at step {i}"
        );
    }
}
