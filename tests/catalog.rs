//! The multi-tenant catalog: acceptance suite for ISSUE 7.
//!
//! What must hold:
//! - **Management plane over the wire**: create / drop / list from
//!   several concurrent clients, with typed 6xx refusals for duplicate
//!   names, bad names, bad specs, and unknown collections.
//! - **Per-collection correctness**: every collection answers from its
//!   own data — oracle agreement for count/search, chi-square for
//!   uniform and weighted sampling.
//! - **Adaptive planning**: `kind: auto` lands on an update-capable
//!   kind when the hints declare churn, and on a static kind otherwise.
//! - **Online re-index**: migrating a collection mid-churn preserves
//!   the global-id contract (old ids valid, retired ids never reissued,
//!   the sequence continues) and post-swap seeded replay is
//!   oracle-correct and byte-identical over the wire and in-process.
//! - **Budget**: exhaustion is the typed `BudgetExceeded` refusal (wire
//!   code 603), refused whole, never an abort — and the server keeps
//!   serving afterwards.
//! - **Persistence**: catalog save → load replays byte-identically
//!   across all collections, including id bookkeeping from before the
//!   save.

use irs::prelude::*;
use irs::sampling::stats::{chi_square_ok, chi_square_uniformity_ok, total_variation};
use irs::{BruteForce, WireCollectionSpec};
use std::collections::BTreeMap;
use std::sync::Mutex;

const DRAWS: usize = 120_000;

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

fn dataset(n: usize, seed: u64) -> Vec<Interval64> {
    irs::datagen::TAXI.generate(n, seed)
}

/// A query whose support is big enough to be interesting and small
/// enough for per-bucket chi-square expectations to be solid.
fn mid_size_query(data: &[Interval64], bf: &BruteForce<i64>, seed: u64) -> Interval64 {
    let workload = irs::datagen::QueryWorkload::from_data(data);
    workload
        .generate(24, 8.0, seed)
        .into_iter()
        .find(|&q| (100..=600).contains(&bf.range_count(q)))
        .expect("workload yields a mid-size support")
}

fn spec(name: &str, kind: Option<&str>) -> WireCollectionSpec {
    WireCollectionSpec {
        name: name.to_string(),
        kind: kind.map(str::to_string),
        update_rate: 0.0,
        expected_extent: 0.001,
        weighted: false,
        shards: 1,
        seed: 42,
    }
}

fn count_of(out: &Result<QueryOutput, irs::WireError>) -> usize {
    match out {
        Ok(QueryOutput::Count(n)) => *n,
        other => panic!("expected Count, got {other:?}"),
    }
}

#[test]
fn collections_are_managed_over_the_wire_by_many_clients() {
    let handle = irs::serve_catalog(Catalog::<i64>::new(), ("127.0.0.1", 0)).expect("serve");
    let addr = handle.local_addr();

    // Four clients create and populate their own tenants concurrently.
    std::thread::scope(|scope| {
        for t in 0..4i64 {
            scope.spawn(move || {
                let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
                let name = format!("tenant-{t}");
                let summary = remote
                    .create_collection(spec(&name, Some("ait")))
                    .expect("create");
                assert_eq!(summary.name, name);
                assert_eq!(summary.kind, "ait");
                assert_eq!(summary.len, 0);
                let muts: Vec<Mutation<i64>> = (0..50)
                    .map(|i| Mutation::Insert {
                        iv: Interval::new(t * 1000 + i, t * 1000 + i + 10),
                    })
                    .collect();
                let outs = remote.apply_in(&name, &muts).expect("apply_in");
                assert!(outs
                    .iter()
                    .all(|o| matches!(o, Ok(UpdateOutput::Inserted(_)))));
            });
        }
    });

    let mut admin = RemoteClient::<i64>::connect(addr).expect("connect");
    let listed = admin.list_collections().expect("ls");
    let mut names: Vec<&str> = listed.iter().map(|c| c.name.as_str()).collect();
    names.sort_unstable();
    assert_eq!(names, ["tenant-0", "tenant-1", "tenant-2", "tenant-3"]);
    assert!(listed.iter().all(|c| c.len == 50 && c.kind == "ait"));

    // Collections are isolated: each tenant sees only its own 50.
    let all = Interval::new(i64::MIN, i64::MAX);
    for t in 0..4 {
        let out = admin
            .run_in(&format!("tenant-{t}"), &[Query::Count { q: all }])
            .expect("run_in");
        assert_eq!(count_of(&out[0]), 50);
    }

    // Typed 6xx refusals for every management-plane misuse.
    let err = admin
        .create_collection(spec("tenant-0", Some("ait")))
        .expect_err("duplicate");
    assert_eq!(err.code, ErrorCode::CatalogCollectionExists);
    let err = admin
        .create_collection(spec("Bad Name!", Some("ait")))
        .expect_err("bad name");
    assert_eq!(err.code, ErrorCode::CatalogInvalidName);
    let err = admin
        .create_collection(spec("nope", Some("btree")))
        .expect_err("bad kind");
    assert_eq!(err.code, ErrorCode::CatalogInvalidSpec);
    let err = admin.drop_collection("ghost").expect_err("unknown drop");
    assert_eq!(err.code, ErrorCode::CatalogUnknownCollection);
    let err = admin
        .run_in("ghost", &[Query::Count { q: all }])
        .expect_err("unknown run");
    assert_eq!(err.code, ErrorCode::CatalogUnknownCollection);

    // Drop frees the name; a recreate starts empty on a new kind.
    admin.drop_collection("tenant-2").expect("drop");
    assert_eq!(admin.list_collections().expect("ls").len(), 3);
    let fresh = admin
        .create_collection(spec("tenant-2", Some("kds")))
        .expect("recreate");
    assert_eq!((fresh.kind.as_str(), fresh.len), ("kds", 0));

    handle.shutdown();
    handle.join();
}

#[test]
fn per_collection_answers_agree_with_the_oracle_and_are_unbiased() {
    let catalog = Catalog::<i64>::new();
    let a = dataset(2000, 5);
    let b = dataset(1500, 9);
    let w_data = dataset(1200, 13);
    let weights = irs::datagen::uniform_weights(w_data.len(), 0xBEEF);
    catalog
        .create(
            CollectionSpec::new("trips")
                .kind(KindSpec::Fixed(IndexKind::Ait))
                .data(a.clone())
                .seed(1),
        )
        .expect("trips");
    catalog
        .create(
            CollectionSpec::new("sensors")
                .kind(KindSpec::Fixed(IndexKind::Kds))
                .shards(2)
                .data(b.clone())
                .seed(2),
        )
        .expect("sensors");
    catalog
        .create(
            CollectionSpec::new("wlogs")
                .kind(KindSpec::Fixed(IndexKind::Awit))
                .data(w_data.clone())
                .weights(weights.clone())
                .seed(3),
        )
        .expect("wlogs");

    // Count / search answer from the collection's own data — no
    // cross-tenant bleed, exact oracle agreement.
    for (name, data) in [("trips", &a), ("sensors", &b), ("wlogs", &w_data)] {
        let bf = BruteForce::new(data);
        let workload = irs::datagen::QueryWorkload::from_data(data);
        for q in workload.generate(12, 8.0, 0xA1) {
            let out = catalog
                .run_in(name, &[Query::Count { q }, Query::Search { q }])
                .expect("run_in");
            assert_eq!(
                out[0].as_ref().expect("count"),
                &QueryOutput::Count(bf.range_count(q)),
                "{name} {q:?}"
            );
            match out[1].as_ref().expect("search") {
                QueryOutput::Ids(ids) => {
                    assert_eq!(sorted(ids.clone()), sorted(bf.range_search(q)), "{name}")
                }
                other => panic!("expected Ids, got {other:?}"),
            }
        }
    }

    // Uniform sampling in one collection is chi-square-clean.
    let bf = BruteForce::new(&a);
    let q = mid_size_query(&a, &bf, 0x5EED);
    let support = sorted(bf.range_search(q));
    let out = catalog
        .run_in("trips", &[Query::Sample { q, s: DRAWS }])
        .expect("sample");
    let samples = match out[0].as_ref().expect("sample ok") {
        QueryOutput::Samples(ids) => ids.clone(),
        other => panic!("expected Samples, got {other:?}"),
    };
    assert_eq!(samples.len(), DRAWS);
    let mut counts = vec![0u64; support.len()];
    for id in samples {
        counts[support.binary_search(&id).expect("in support")] += 1;
    }
    let uniform = vec![1.0 / support.len() as f64; support.len()];
    assert!(
        chi_square_uniformity_ok(&counts, DRAWS as u64),
        "uniform sampling through the catalog biased (tv = {:.4})",
        total_variation(&counts, &uniform, DRAWS as u64)
    );

    // Weighted sampling in another collection matches the exact
    // weight-proportional distribution.
    let bfw = BruteForce::new_weighted(&w_data, &weights);
    let q = mid_size_query(&w_data, &bfw, 0xFACE);
    let support = sorted(bfw.range_search(q));
    let mass: f64 = support.iter().map(|&id| weights[id as usize]).sum();
    let expected: Vec<f64> = support
        .iter()
        .map(|&id| weights[id as usize] / mass)
        .collect();
    let out = catalog
        .run_in("wlogs", &[Query::SampleWeighted { q, s: DRAWS }])
        .expect("sample weighted");
    let samples = match out[0].as_ref().expect("weighted ok") {
        QueryOutput::Samples(ids) => ids.clone(),
        other => panic!("expected Samples, got {other:?}"),
    };
    let mut counts = vec![0u64; support.len()];
    for id in samples {
        counts[support.binary_search(&id).expect("in support")] += 1;
    }
    assert!(
        chi_square_ok(&counts, &expected, DRAWS as u64),
        "weighted sampling through the catalog biased (tv = {:.4})",
        total_variation(&counts, &expected, DRAWS as u64)
    );
}

#[test]
fn auto_kind_selection_follows_workload_hints() {
    let catalog = Catalog::<i64>::new();
    let data = dataset(3000, 7);

    // Churning, uniform: the planner must land on an update-capable
    // kind — hints can never strand mutations on a static snapshot.
    let churny = catalog
        .create(
            CollectionSpec::new("churny")
                .kind(KindSpec::Auto(WorkloadHints {
                    update_rate: 0.5,
                    ..WorkloadHints::default()
                }))
                .data(data.clone()),
        )
        .expect("churny");
    assert!(
        churny.kind.capabilities(false).update,
        "churning hints picked the static kind {:?}",
        churny.kind
    );
    // And the pick is live, not just declared: an insert works.
    let outs = catalog
        .apply_in(
            "churny",
            &[Mutation::Insert {
                iv: Interval::new(1, 2),
            }],
        )
        .expect("apply");
    assert!(matches!(outs[0], Ok(UpdateOutput::Inserted(_))));

    // Read-only, uniform: a static kind wins on throughput.
    let coldy = catalog
        .create(
            CollectionSpec::new("coldy")
                .kind(KindSpec::Auto(WorkloadHints::default()))
                .data(data.clone()),
        )
        .expect("coldy");
    assert!(
        !coldy.kind.capabilities(false).update,
        "read-only hints should pick a static kind, got {:?}",
        coldy.kind
    );

    // Weighted churn: the only kind that both updates and samples by
    // weight.
    let weights = irs::datagen::uniform_weights(data.len(), 0xAB);
    let wchurn = catalog
        .create(
            CollectionSpec::new("wchurn")
                .kind(KindSpec::Auto(WorkloadHints {
                    update_rate: 0.3,
                    weighted: true,
                    ..WorkloadHints::default()
                }))
                .data(data.clone())
                .weights(weights),
        )
        .expect("wchurn");
    assert_eq!(wchurn.kind, IndexKind::AwitDynamic);

    // The planner also answers over the wire: `kind: None` is auto, the
    // summary reports the resolved kind and flags the collection.
    let handle = irs::serve_catalog(catalog, ("127.0.0.1", 0)).expect("serve");
    let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");
    let mut wire_spec = spec("wire-churn", None);
    wire_spec.update_rate = 0.4;
    let summary = remote.create_collection(wire_spec).expect("auto create");
    assert!(summary.auto, "planner-chosen collection must be flagged");
    let kind = IndexKind::parse(&summary.kind).expect("resolved kind");
    assert!(kind.capabilities(false).update, "got {kind:?}");
    handle.shutdown();
    handle.join();
}

#[test]
fn online_reindex_mid_churn_preserves_the_global_id_contract() {
    let catalog = Catalog::<i64>::new();
    let data = dataset(2000, 21);
    catalog
        .create(
            CollectionSpec::new("hot")
                .kind(KindSpec::Fixed(IndexKind::Ait))
                .data(data.clone())
                .seed(4),
        )
        .expect("create");
    let handle = irs::serve_catalog(catalog.clone(), ("127.0.0.1", 0)).expect("serve");
    let addr = handle.local_addr();

    // Build-order ids are 0..n; the tracked live set is the oracle.
    let live: Mutex<BTreeMap<ItemId, Interval64>> = Mutex::new(
        data.iter()
            .copied()
            .enumerate()
            .map(|(i, iv)| (i as ItemId, iv))
            .collect(),
    );
    let mut max_issued: ItemId = data.len() as ItemId - 1;

    std::thread::scope(|scope| {
        let live = &live;
        // Churn in a disjoint window: insert 400, remove every other
        // one, while the migration runs. Ids must be strictly fresh.
        let churner = scope.spawn(move || {
            let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
            let mut max_id: ItemId = 1999;
            for i in 0..400i64 {
                let iv = Interval::new(10_000_000 + i * 50, 10_000_000 + i * 50 + 25);
                let out = remote
                    .apply_in("hot", &[Mutation::Insert { iv }])
                    .expect("insert");
                let id = match out[0] {
                    Ok(UpdateOutput::Inserted(id)) => id,
                    ref other => panic!("insert answered {other:?}"),
                };
                assert!(id > max_id, "id {id} reissued (max so far {max_id})");
                max_id = id;
                live.lock().unwrap().insert(id, iv);
                if i % 2 == 0 {
                    let out = remote
                        .apply_in("hot", &[Mutation::Delete { id }])
                        .expect("delete");
                    assert!(matches!(out[0], Ok(UpdateOutput::Removed)));
                    live.lock().unwrap().remove(&id);
                }
            }
            max_id
        });

        // Mid-churn: migrate AIT → DynamicAwit (both update-capable, so
        // the churn keeps landing after the swap).
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut admin = RemoteClient::<i64>::connect(addr).expect("connect");
        let info = admin.reindex("hot", "awit-dynamic").expect("reindex");
        assert_eq!(info.kind, "awit-dynamic");
        max_issued = churner.join().expect("churner");
    });

    let live = live.into_inner().unwrap();
    let mut remote = RemoteClient::<i64>::connect(addr).expect("connect");
    let all = Interval::new(i64::MIN, i64::MAX);

    // Post-swap answers are oracle-correct against the tracked live
    // set, across both the original data and the churn window.
    let mut windows: Vec<Interval64> = irs::datagen::QueryWorkload::from_data(&data)
        .generate(6, 8.0, 0xD0)
        .to_vec();
    windows.push(Interval::new(10_000_000, 10_020_000));
    windows.push(all);
    for q in &windows {
        let expect: Vec<ItemId> = live
            .iter()
            .filter(|(_, iv)| iv.overlaps(q))
            .map(|(&id, _)| id)
            .collect();
        let out = remote
            .run_in("hot", &[Query::Count { q: *q }, Query::Search { q: *q }])
            .expect("run_in");
        assert_eq!(count_of(&out[0]), expect.len(), "{q:?}");
        match out[1].as_ref().expect("search") {
            QueryOutput::Ids(ids) => assert_eq!(sorted(ids.clone()), sorted(expect), "{q:?}"),
            other => panic!("expected Ids, got {other:?}"),
        }
    }

    // Seeded replay on the new kind: byte-identical across repeats and
    // across transports (wire vs the in-process handle), samples only
    // from the live set.
    let queries: Vec<Query<i64>> = windows
        .iter()
        .map(|&q| Query::Sample { q, s: 32 })
        .collect();
    let first = remote.run_seeded_in("hot", &queries, 77).expect("replay");
    let second = remote.run_seeded_in("hot", &queries, 77).expect("replay");
    let local = catalog.run_seeded_in("hot", &queries, 77).expect("replay");
    for (i, q) in windows.iter().enumerate() {
        let w1 = first[i].as_ref().expect("wire ok");
        let w2 = second[i].as_ref().expect("wire ok");
        let l = local[i].as_ref().expect("local ok");
        assert_eq!(w1, w2, "replay diverged across repeats for {q:?}");
        assert_eq!(w1, l, "replay diverged across transports for {q:?}");
        if let QueryOutput::Samples(ids) = w1 {
            for &id in ids {
                assert!(
                    live.get(&id).is_some_and(|iv| iv.overlaps(q)),
                    "sampled id {id} not live in {q:?}"
                );
            }
        }
    }

    // The id contract after the swap: old ids still actionable, retired
    // ids stay retired, and the global sequence continues past every id
    // ever issued.
    let victim: ItemId = 0; // issued by the original AIT build
    let out = remote
        .apply_in("hot", &[Mutation::Delete { id: victim }])
        .expect("delete pre-swap id");
    assert!(matches!(out[0], Ok(UpdateOutput::Removed)));
    let out = remote
        .apply_in("hot", &[Mutation::Delete { id: victim }])
        .expect("double delete is a per-mutation error");
    match &out[0] {
        Err(e) => assert_eq!(e.code, ErrorCode::UpdateUnknownId),
        ok => panic!("double delete answered {ok:?}"),
    }
    let out = remote
        .apply_in(
            "hot",
            &[Mutation::Insert {
                iv: Interval::new(5, 6),
            }],
        )
        .expect("insert");
    match out[0] {
        Ok(UpdateOutput::Inserted(id)) => {
            assert!(id > max_issued, "sequence reset: {id} <= {max_issued}")
        }
        ref other => panic!("insert answered {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn budget_exhaustion_is_a_typed_refusal_never_an_abort() {
    // In-process: an oversized create is refused whole, leaving no
    // residue behind.
    let tiny = Catalog::<i64>::with_budget(4 * 1024);
    let err = tiny
        .create(
            CollectionSpec::new("big")
                .kind(KindSpec::Fixed(IndexKind::Ait))
                .data(dataset(20_000, 3)),
        )
        .expect_err("20k intervals cannot fit a 4 KiB budget");
    assert!(
        matches!(err, CatalogError::BudgetExceeded { .. }),
        "{err:?}"
    );
    assert!(tiny.list().is_empty(), "refused create left residue");
    assert_eq!(tiny.used_bytes(), 0);

    // Over the wire: inserts hit the ceiling as wire code 603, the
    // batch is refused whole, and the server keeps serving.
    let catalog = Catalog::<i64>::with_budget(512 * 1024);
    let handle = irs::serve_catalog(catalog, ("127.0.0.1", 0)).expect("serve");
    let mut remote = RemoteClient::<i64>::connect(handle.local_addr()).expect("connect");
    remote
        .create_collection(spec("a", Some("ait")))
        .expect("create");

    let batch: Vec<Mutation<i64>> = (0..256)
        .map(|i| Mutation::Insert {
            iv: Interval::new(i, i + 5),
        })
        .collect();
    let mut acked = 0usize;
    let refusal = loop {
        match remote.apply_in("a", &batch) {
            Ok(outs) => {
                assert!(outs
                    .iter()
                    .all(|o| matches!(o, Ok(UpdateOutput::Inserted(_)))));
                acked += outs.len();
                assert!(acked <= 200_000, "budget was never enforced");
            }
            Err(e) => break e,
        }
    };
    assert_eq!(refusal.code, ErrorCode::CatalogBudgetExceeded);
    assert_eq!(refusal.code as u16, 603);

    // Refused whole: exactly the acked inserts are live — the refused
    // batch landed nothing.
    let all = Interval::new(i64::MIN, i64::MAX);
    let out = remote
        .run_in("a", &[Query::Count { q: all }])
        .expect("count");
    assert_eq!(count_of(&out[0]), acked);

    // Never an abort: the connection and server stay healthy; reads
    // and deletes (which free space) still pass.
    remote.health().expect("health after refusal");
    let out = remote
        .run_in("a", &[Query::Sample { q: all, s: 8 }])
        .expect("sample");
    assert!(out[0].is_ok());
    let out = remote
        .apply_in("a", &[Mutation::Delete { id: 0 }])
        .expect("deletes pass under a full budget");
    assert!(matches!(out[0], Ok(UpdateOutput::Removed)));

    handle.shutdown();
    handle.join();
}

#[test]
fn catalog_save_load_round_trips_every_collection() {
    let tmp = std::env::temp_dir().join(format!("irs-catalog-rt-{}", std::process::id()));
    let catalog = Catalog::<i64>::with_budget(1 << 30);
    let a = dataset(1500, 41);
    let b = dataset(900, 43);
    let weights = irs::datagen::uniform_weights(b.len(), 0xAB);
    catalog
        .create(
            CollectionSpec::new("alpha")
                .kind(KindSpec::Fixed(IndexKind::Ait))
                .data(a.clone())
                .seed(6),
        )
        .expect("alpha");
    catalog
        .create(
            CollectionSpec::new("beta")
                .kind(KindSpec::Fixed(IndexKind::Awit))
                .data(b.clone())
                .weights(weights)
                .seed(8),
        )
        .expect("beta");
    catalog
        .create(
            CollectionSpec::new("gamma")
                .kind(KindSpec::Auto(WorkloadHints {
                    update_rate: 0.4,
                    ..WorkloadHints::default()
                }))
                .data(a.clone()),
        )
        .expect("gamma");

    // Mutate and re-index before saving, so the manifest must carry the
    // id bookkeeping — not just the data.
    let outs = catalog
        .apply_in(
            "gamma",
            &[
                Mutation::Insert {
                    iv: Interval::new(7, 8),
                },
                Mutation::Insert {
                    iv: Interval::new(9, 10),
                },
                Mutation::Delete { id: 0 },
            ],
        )
        .expect("mutate gamma");
    assert!(outs.iter().all(|o| o.is_ok()));
    catalog
        .reindex("gamma", IndexKind::AwitDynamic, None)
        .expect("reindex gamma");

    catalog.save(&tmp).expect("save");
    let restored = Catalog::<i64>::load(&tmp).expect("load");
    assert_eq!(restored.budget_bytes(), catalog.budget_bytes());

    for info in catalog.list() {
        let r = restored.describe(&info.name).expect("describe");
        assert_eq!(
            (r.kind, r.shards, r.len, r.weighted, r.seed),
            (info.kind, info.shards, info.len, info.weighted, info.seed),
            "{} changed across the round-trip",
            info.name
        );
        // Byte-identical seeded replay, collection by collection.
        let source = if info.name == "beta" { &b } else { &a };
        let queries: Vec<Query<i64>> = irs::datagen::QueryWorkload::from_data(source)
            .generate(8, 8.0, 0xCC)
            .into_iter()
            .map(|q| {
                if info.weighted {
                    Query::SampleWeighted { q, s: 16 }
                } else {
                    Query::Sample { q, s: 16 }
                }
            })
            .collect();
        let x = catalog
            .run_seeded_in(&info.name, &queries, 99)
            .expect("original replay");
        let y = restored
            .run_seeded_in(&info.name, &queries, 99)
            .expect("restored replay");
        for (i, (xo, yo)) in x.iter().zip(&y).enumerate() {
            assert_eq!(
                xo.as_ref().expect("original ok"),
                yo.as_ref().expect("restored ok"),
                "{} query {i} replayed differently",
                info.name
            );
        }
    }

    // The global-id contract survives the restart: the pre-save delete
    // stays retired, and the next insert continues the sequence where
    // the saved catalog left off (1500 build ids + 2 inserts → 1502).
    let outs = restored
        .apply_in("gamma", &[Mutation::Delete { id: 0 }])
        .expect("apply");
    match &outs[0] {
        Err(UpdateError::UnknownId { id: 0 }) => {}
        other => panic!("pre-save retired id answered {other:?}"),
    }
    let outs = restored
        .apply_in(
            "gamma",
            &[Mutation::Insert {
                iv: Interval::new(11, 12),
            }],
        )
        .expect("apply");
    assert_eq!(outs[0], Ok(UpdateOutput::Inserted(1502)));

    std::fs::remove_dir_all(&tmp).ok();
}
