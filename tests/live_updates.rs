//! Table VII-style churn suite: the unified API's mutation surface,
//! exercised through the `Client` on both backends for every
//! update-capable kind × shard count in {1, 4, 7}.
//!
//! The script interleaves one-by-one inserts, pooled batch inserts
//! (`extend_batch`), and deletes with live queries, holding a shadow
//! copy of the dataset as the oracle. The contract under test:
//!
//! - an inserted interval is **immediately** searchable and sampleable
//!   under its returned id, on both backends;
//! - a removed id **never appears again** — not in searches, not in
//!   samples — and removing it twice is `UnknownId`;
//! - after arbitrary churn the sampler is still unbiased: chi-square
//!   suites over the live support pass, uniform and weighted.

use irs::prelude::*;
use irs::sampling::stats::{chi_square_ok, chi_square_uniformity_ok, total_variation};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

const SHARD_COUNTS: [usize; 3] = [1, 4, 7];
const DRAWS: usize = 120_000;

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

/// Live oracle: id → (interval, weight).
type Shadow = HashMap<ItemId, (Interval64, f64)>;

fn shadow_matches(shadow: &Shadow, q: Interval64) -> Vec<ItemId> {
    sorted(
        shadow
            .iter()
            .filter(|(_, (iv, _))| iv.overlaps(&q))
            .map(|(&id, _)| id)
            .collect(),
    )
}

/// Runs the churn script and all assertions for one configuration.
fn churn(kind: IndexKind, weighted: bool, shards: usize, seed: u64) {
    let n = 1200;
    let data = irs::datagen::TAXI.generate(n, seed);
    let weights = irs::datagen::uniform_weights(n, seed ^ 0xA1);
    let mut builder = Irs::builder().kind(kind).shards(shards).seed(seed);
    if weighted {
        builder = builder.weights(weights.clone());
    }
    let mut client = builder.build(&data).expect("churn build");
    let caps = client.capabilities();
    assert!(caps.update, "{kind} must claim updates for this suite");

    let mut shadow: Shadow = data
        .iter()
        .enumerate()
        .map(|(i, &iv)| (i as ItemId, (iv, if weighted { weights[i] } else { 1.0 })))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x17);
    let fresh = irs::datagen::TAXI.generate(400, seed ^ 0x99);
    let mut fresh_it = fresh.iter().copied();
    let workload = irs::datagen::QueryWorkload::from_data(&data);
    let probes = workload.generate(4, 8.0, seed ^ 0x33);

    for step in 0..32usize {
        match step % 4 {
            0 => {
                // One-by-one insertion (Algorithm 1's cases).
                for _ in 0..8 {
                    let iv = fresh_it.next().unwrap();
                    let (id, w) = if weighted {
                        let w = 1.0 + (step % 7) as f64;
                        (client.insert_weighted(iv, w).unwrap(), w)
                    } else {
                        (client.insert(iv).unwrap(), 1.0)
                    };
                    assert!(
                        shadow.insert(id, (iv, w)).is_none(),
                        "{kind} K={shards}: id {id} reissued"
                    );
                    // Immediately searchable.
                    assert!(
                        client.search(iv).unwrap().contains(&id),
                        "{kind} K={shards}: fresh insert invisible"
                    );
                }
            }
            1 => {
                // Pooled batch insertion (unit weight on every build).
                let batch: Vec<Interval64> = (&mut fresh_it).take(20).collect();
                let ids = client.extend_batch(&batch).unwrap();
                assert_eq!(ids.len(), batch.len());
                for (&iv, id) in batch.iter().zip(ids) {
                    assert!(
                        shadow.insert(id, (iv, 1.0)).is_none(),
                        "{kind} K={shards}: id {id} reissued by extend_batch"
                    );
                }
            }
            2 => {
                // Deletion, with the retired-id contract.
                for _ in 0..12 {
                    if shadow.is_empty() {
                        break;
                    }
                    let ids: Vec<ItemId> = shadow.keys().copied().collect();
                    let id = ids[rng.random_range(0..ids.len())];
                    let (iv, _) = shadow.remove(&id).unwrap();
                    client.remove(id).unwrap();
                    assert!(
                        !client.search(iv).unwrap().contains(&id),
                        "{kind} K={shards}: removed id {id} still searchable"
                    );
                    assert_eq!(
                        client.remove(id),
                        Err(UpdateError::UnknownId { id }),
                        "{kind} K={shards}: retired id {id} removable twice"
                    );
                }
            }
            _ => {
                // Oracle-agreement probe over the live set.
                for &q in &probes {
                    let expect = shadow_matches(&shadow, q);
                    assert_eq!(
                        sorted(client.search(q).unwrap()),
                        expect,
                        "{kind} w={weighted} K={shards}: search diverged at step {step}"
                    );
                    assert_eq!(
                        client.count(q).unwrap(),
                        expect.len(),
                        "{kind} w={weighted} K={shards}: count diverged at step {step}"
                    );
                    let samples = if caps.uniform_sample {
                        client.sample(q, 32).unwrap()
                    } else {
                        client.sample_weighted(q, 32).unwrap()
                    };
                    assert_eq!(samples.len(), if expect.is_empty() { 0 } else { 32 });
                    for id in samples {
                        assert!(
                            expect.binary_search(&id).is_ok(),
                            "{kind} w={weighted} K={shards}: sampled dead or foreign id {id}"
                        );
                    }
                }
            }
        }
    }
    assert_eq!(client.len(), shadow.len(), "{kind} K={shards}: len drifted");

    // Chi-square unbiasedness over the post-churn live support.
    let q = workload
        .generate(48, 8.0, seed ^ 0x44)
        .into_iter()
        .find(|&q| (80..=700).contains(&shadow_matches(&shadow, q).len()))
        .expect("workload yields a mid-size post-churn support");
    let support = shadow_matches(&shadow, q);
    let samples = if caps.uniform_sample {
        client.sample(q, DRAWS).unwrap()
    } else {
        client.sample_weighted(q, DRAWS).unwrap()
    };
    assert_eq!(samples.len(), DRAWS);
    let mut counts = vec![0u64; support.len()];
    for id in samples {
        let pos = support
            .binary_search(&id)
            .expect("post-churn sample outside live support");
        counts[pos] += 1;
    }
    if caps.uniform_sample {
        assert!(
            chi_square_uniformity_ok(&counts, DRAWS as u64),
            "{kind} w={weighted} K={shards}: post-churn sampling biased (tv = {:.4})",
            total_variation(
                &counts,
                &vec![1.0 / support.len() as f64; support.len()],
                DRAWS as u64
            )
        );
    } else {
        let mass: f64 = support.iter().map(|id| shadow[id].1).sum();
        let expected: Vec<f64> = support.iter().map(|id| shadow[id].1 / mass).collect();
        assert!(
            chi_square_ok(&counts, &expected, DRAWS as u64),
            "{kind} w={weighted} K={shards}: post-churn weighted sampling off (tv = {:.4})",
            total_variation(&counts, &expected, DRAWS as u64)
        );
    }
}

#[test]
fn churn_ait_all_shard_counts() {
    for shards in SHARD_COUNTS {
        churn(IndexKind::Ait, false, shards, 0xA17 + shards as u64);
    }
}

#[test]
fn churn_awit_dynamic_uniform_all_shard_counts() {
    for shards in SHARD_COUNTS {
        churn(IndexKind::AwitDynamic, false, shards, 0xD1A + shards as u64);
    }
}

#[test]
fn churn_awit_dynamic_weighted_all_shard_counts() {
    for shards in SHARD_COUNTS {
        churn(IndexKind::AwitDynamic, true, shards, 0xD1B + shards as u64);
    }
}

/// The mutation APIs behave identically over the two backends: the same
/// script applied to a monolithic and a sharded client yields the same
/// live set (ids differ by routing, the *intervals* agree).
#[test]
fn backends_agree_after_identical_churn() {
    let data = irs::datagen::BOOK.generate(800, 7);
    let fresh = irs::datagen::BOOK.generate(200, 8);
    let q = Interval::new(0, irs::datagen::BOOK.domain_size);
    let mut counts = Vec::new();
    for shards in [1usize, 4] {
        let mut client = Irs::builder()
            .kind(IndexKind::Ait)
            .shards(shards)
            .seed(9)
            .build(&data)
            .unwrap();
        let ids = client.extend_batch(&fresh).unwrap();
        for &id in ids.iter().step_by(2) {
            client.remove(id).unwrap();
        }
        counts.push(client.count(q).unwrap());
        assert_eq!(
            client.len(),
            data.len() + fresh.len() - ids.len().div_ceil(2)
        );
    }
    assert_eq!(counts[0], counts[1], "backends diverged after churn");
}
