//! The index structures are generic over any `Copy + Ord` endpoint
//! (HINTm additionally needs a grid embedding). These tests exercise
//! non-`i64` endpoint types and extreme endpoint magnitudes.

use irs::prelude::*;
use irs::BruteForce;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

#[test]
fn u32_endpoints_work_everywhere() {
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<Interval<u32>> = (0..2000)
        .map(|_| {
            let lo = rng.random_range(0..100_000u32);
            Interval::new(lo, lo + rng.random_range(0..5_000))
        })
        .collect();
    let bf = BruteForce::new(&data);
    let ait = Ait::new(&data);
    let aitv = AitV::new(&data);
    let itree = IntervalTree::new(&data);
    let hint = HintM::new(&data);
    let kds = Kds::new(&data);
    let st = SegmentTree::new(&data);
    for _ in 0..20 {
        let lo = rng.random_range(0..100_000u32);
        let q = Interval::new(lo, lo + rng.random_range(0..20_000));
        let expect = sorted(bf.range_search(q));
        assert_eq!(sorted(ait.range_search(q)), expect);
        assert_eq!(sorted(aitv.range_search(q)), expect);
        assert_eq!(sorted(itree.range_search(q)), expect);
        assert_eq!(sorted(hint.range_search(q)), expect);
        assert_eq!(sorted(kds.range_search(q)), expect);
        assert_eq!(sorted(st.range_search(q)), expect);
        assert_eq!(sorted(st.stab(q.lo)), sorted(bf.stab(q.lo)));
    }
}

#[test]
fn i16_endpoints_work() {
    let data: Vec<Interval<i16>> = (-50i16..50)
        .map(|i| Interval::new(i, i.saturating_add(20)))
        .collect();
    let bf = BruteForce::new(&data);
    let ait = Ait::new(&data);
    let hint = HintM::new(&data);
    for p in [-60i16, -50, 0, 30, 69, 70, 80] {
        let q = Interval::point(p);
        assert_eq!(
            sorted(ait.range_search(q)),
            sorted(bf.range_search(q)),
            "stab {p}"
        );
        assert_eq!(
            sorted(hint.range_search(q)),
            sorted(bf.range_search(q)),
            "stab {p}"
        );
    }
}

#[test]
fn extreme_i64_magnitudes() {
    // Endpoints spanning almost the whole i64 range stress HINTm's grid
    // embedding (u64 offsets) and everyone's comparisons.
    let data = vec![
        Interval::new(i64::MIN, i64::MIN + 10),
        Interval::new(i64::MIN / 2, i64::MAX / 2),
        Interval::new(-1, 1),
        Interval::new(i64::MAX - 10, i64::MAX),
        Interval::new(i64::MIN, i64::MAX),
    ];
    let bf = BruteForce::new(&data);
    let ait = Ait::new(&data);
    let hint = HintM::new(&data);
    let kds = Kds::new(&data);
    let itree = IntervalTree::new(&data);
    for q in [
        Interval::new(i64::MIN, i64::MIN),
        Interval::new(-100, 100),
        Interval::new(i64::MAX - 5, i64::MAX),
        Interval::new(0, i64::MAX),
        Interval::new(i64::MIN, i64::MAX),
    ] {
        let expect = sorted(bf.range_search(q));
        assert_eq!(sorted(ait.range_search(q)), expect, "AIT {q:?}");
        assert_eq!(sorted(hint.range_search(q)), expect, "HINTm {q:?}");
        assert_eq!(sorted(kds.range_search(q)), expect, "KDS {q:?}");
        assert_eq!(sorted(itree.range_search(q)), expect, "itree {q:?}");
    }
}

#[test]
fn sampling_works_with_s_zero_and_huge_s() {
    let data: Vec<Interval64> = (0..100).map(|i| Interval::new(i, i + 10)).collect();
    let ait = Ait::new(&data);
    let mut rng = StdRng::seed_from_u64(2);
    assert!(ait.sample(Interval::new(50, 60), 0, &mut rng).is_empty());
    let big = ait.sample(Interval::new(50, 60), 100_000, &mut rng);
    assert_eq!(big.len(), 100_000);
}

#[test]
fn char_endpoints_compile_and_answer() {
    // Even non-numeric Ord types work for the comparison-only structures.
    let data = vec![
        Interval::new('a', 'f'),
        Interval::new('c', 'z'),
        Interval::new('m', 'p'),
    ];
    let ait = Ait::new(&data);
    let bf = BruteForce::new(&data);
    for q in [
        Interval::new('b', 'd'),
        Interval::point('n'),
        Interval::new('q', 'y'),
    ] {
        assert_eq!(
            sorted(ait.range_search(q)),
            sorted(bf.range_search(q)),
            "{q:?}"
        );
    }
}
