//! Documentation / code synchronisation gates.
//!
//! The wire protocol's error codes are a public, append-only contract;
//! `DESIGN.md` carries the normative table. These tests fail the build
//! when a new `ErrorCode` variant lands without its documentation row —
//! the cheapest possible way to keep the spec from rotting.

use irs::ErrorCode;

fn design_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Every `ErrorCode` variant — including the 6xx catalog block — must
/// appear in DESIGN.md as `<number> <stable-name>`.
#[test]
fn design_md_documents_every_wire_error_code() {
    let doc = design_md();
    let mut missing = Vec::new();
    for code in ErrorCode::ALL {
        let row = format!("{} {}", code as u16, code.name());
        if !doc.contains(&row) {
            missing.push(row);
        }
    }
    assert!(
        missing.is_empty(),
        "DESIGN.md's error-code table is out of date; add rows for: {missing:?}"
    );
}

/// The documented names must be the stable `name()` strings — guard
/// against a rename in code silently diverging from the table (the
/// table check above would then fail too, but this pins the inverse:
/// no two variants may collapse onto one name or number).
#[test]
fn wire_error_codes_are_distinct() {
    let mut nums = std::collections::BTreeSet::new();
    let mut names = std::collections::BTreeSet::new();
    for code in ErrorCode::ALL {
        assert!(
            nums.insert(code as u16),
            "duplicate code number {}",
            code as u16
        );
        assert!(
            names.insert(code.name()),
            "duplicate code name {}",
            code.name()
        );
    }
    assert_eq!(nums.len(), ErrorCode::ALL.len());
}
