//! Documentation / code synchronisation gates.
//!
//! The wire protocol's error codes are a public, append-only contract;
//! `DESIGN.md` carries the normative table. These tests fail the build
//! when a new `ErrorCode` variant lands without its documentation row —
//! the cheapest possible way to keep the spec from rotting.

use irs::ErrorCode;

fn design_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn registry() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/contracts/registry.txt");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Every `ErrorCode` variant — including the 6xx catalog block — must
/// appear in DESIGN.md as `<number> <stable-name>`.
#[test]
fn design_md_documents_every_wire_error_code() {
    let doc = design_md();
    let mut missing = Vec::new();
    for code in ErrorCode::ALL {
        let row = format!("{} {}", code as u16, code.name());
        if !doc.contains(&row) {
            missing.push(row);
        }
    }
    assert!(
        missing.is_empty(),
        "DESIGN.md's error-code table is out of date; add rows for: {missing:?}"
    );
}

/// The documented names must be the stable `name()` strings — guard
/// against a rename in code silently diverging from the table (the
/// table check above would then fail too, but this pins the inverse:
/// no two variants may collapse onto one name or number).
#[test]
fn wire_error_codes_are_distinct() {
    let mut nums = std::collections::BTreeSet::new();
    let mut names = std::collections::BTreeSet::new();
    for code in ErrorCode::ALL {
        assert!(
            nums.insert(code as u16),
            "duplicate code number {}",
            code as u16
        );
        assert!(
            names.insert(code.name()),
            "duplicate code name {}",
            code.name()
        );
    }
    assert_eq!(nums.len(), ErrorCode::ALL.len());
}

/// Every `ErrorCode` variant — the 7xx replication block included — is
/// pinned in the append-only registry under its stable number, so a
/// renumber (or a silent removal) fails here even before `irs-audit`
/// runs.
#[test]
fn registry_pins_every_wire_error_code() {
    let reg = registry();
    let mut missing = Vec::new();
    for code in ErrorCode::ALL {
        let pin = format!("error-code {:?} = {}", code, code as u16);
        if !reg.contains(&pin) {
            missing.push(pin);
        }
    }
    assert!(
        missing.is_empty(),
        "contracts/registry.txt is missing pins (append them, never renumber): {missing:?}"
    );
}

/// The replication wire surface — request tags, streamed response tags,
/// and the log's file-role byte — is pinned append-only alongside the
/// pre-existing entries (which must all still be present).
#[test]
fn registry_pins_the_replication_wire_contract() {
    let reg = registry();
    for pin in [
        // Pre-replication anchors: appending must never displace these.
        "request-tag REQ_HEALTH = 1",
        "response-tag RESP_OK = 1",
        "snapshot-role ROLE_MANIFEST = 1",
        "format-version FORMAT_VERSION = 1",
        // The replication block.
        "request-tag REQ_SUBSCRIBE = 17",
        "request-tag REQ_FETCH_SNAPSHOT = 18",
        "request-tag REQ_REPLICATION_STATUS = 19",
        "request-tag REQ_PROMOTE = 20",
        "response-tag RESP_LOG_RECORD = 8",
        "response-tag RESP_SNAPSHOT_CHUNK = 9",
        "response-tag RESP_REPLICATION = 10",
        "snapshot-role ROLE_LOG = 4",
    ] {
        assert!(
            reg.contains(pin),
            "contracts/registry.txt lost the pin `{pin}` (the registry is append-only)"
        );
    }
}
