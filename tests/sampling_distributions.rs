//! Statistical validation of the IRS guarantees across all samplers
//! (Theorem 3 and its weighted analogue): on a shared dataset and query,
//! every structure's empirical sampling distribution must pass a
//! chi-square goodness-of-fit test against the exact target distribution.

use irs::prelude::*;
use irs::sampling::stats::{chi_square_ok, chi_square_uniformity_ok};
use irs::BruteForce;
use rand::{rngs::StdRng, SeedableRng};

const DRAWS: usize = 120_000;

fn support_of(data: &[Interval64], q: Interval64) -> Vec<ItemId> {
    let bf = BruteForce::new(data);
    let mut s = bf.range_search(q);
    s.sort_unstable();
    s
}

fn assert_uniform(
    name: &str,
    data: &[Interval64],
    q: Interval64,
    samples: Vec<ItemId>,
    support: &[ItemId],
) {
    assert_eq!(samples.len(), DRAWS, "{name}: wrong sample count");
    let mut counts = vec![0u64; support.len()];
    for id in samples {
        let pos = support
            .binary_search(&id)
            .unwrap_or_else(|_| panic!("{name}: sample {id} outside q ∩ X for {q:?}"));
        counts[pos] += 1;
        assert!(
            data[id as usize].overlaps(&q),
            "{name}: non-overlapping sample"
        );
    }
    assert!(
        chi_square_uniformity_ok(&counts, DRAWS as u64),
        "{name}: sampling distribution not uniform over {} candidates",
        support.len()
    );
}

#[test]
fn unweighted_samplers_are_uniform() {
    let data = irs::datagen::RENFE.generate(5_000, 21);
    let q = irs::datagen::QueryWorkload::from_data(&data).generate(1, 2.0, 22)[0];
    let support = support_of(&data, q);
    assert!(
        (30..2000).contains(&support.len()),
        "need a mid-sized support for a meaningful test, got {}",
        support.len()
    );

    let ait = Ait::new(&data);
    let aitv = AitV::new(&data);
    let itree = IntervalTree::new(&data);
    let hint = HintM::new(&data);
    let kds = Kds::new(&data);

    let mut rng = StdRng::seed_from_u64(1000);
    assert_uniform("AIT", &data, q, ait.sample(q, DRAWS, &mut rng), &support);
    assert_uniform("AIT-V", &data, q, aitv.sample(q, DRAWS, &mut rng), &support);
    assert_uniform(
        "IntervalTree",
        &data,
        q,
        itree.sample(q, DRAWS, &mut rng),
        &support,
    );
    assert_uniform("HINTm", &data, q, hint.sample(q, DRAWS, &mut rng), &support);
    assert_uniform("KDS", &data, q, kds.sample(q, DRAWS, &mut rng), &support);
}

#[test]
fn weighted_samplers_match_weight_proportions() {
    let data = irs::datagen::BTC.generate(4_000, 23);
    let weights = irs::datagen::uniform_weights(data.len(), 24);
    let q = irs::datagen::QueryWorkload::from_data(&data).generate(1, 6.0, 25)[0];
    let support = support_of(&data, q);
    assert!(
        (30..2000).contains(&support.len()),
        "support size {}",
        support.len()
    );
    let total: f64 = support.iter().map(|&id| weights[id as usize]).sum();
    let expected: Vec<f64> = support
        .iter()
        .map(|&id| weights[id as usize] / total)
        .collect();

    let awit = Awit::new(&data, &weights);
    let itree = IntervalTree::new_weighted(&data, &weights);
    let hint = HintM::new_weighted(&data, &weights);
    let kds = Kds::new_weighted(&data, &weights);

    let mut rng = StdRng::seed_from_u64(2000);
    for (name, samples) in [
        ("AWIT", awit.sample_weighted(q, DRAWS, &mut rng)),
        ("IntervalTree", itree.sample_weighted(q, DRAWS, &mut rng)),
        ("HINTm", hint.sample_weighted(q, DRAWS, &mut rng)),
        ("KDS", kds.sample_weighted(q, DRAWS, &mut rng)),
    ] {
        let mut counts = vec![0u64; support.len()];
        for id in samples {
            let pos = support
                .binary_search(&id)
                .unwrap_or_else(|_| panic!("{name}: sample outside q ∩ X"));
            counts[pos] += 1;
        }
        assert!(
            chi_square_ok(&counts, &expected, DRAWS as u64),
            "{name}: weighted sampling deviates from w(x)/Σw"
        );
    }
}

#[test]
fn independence_across_queries() {
    // Two runs of the same query must be fresh draws: with a support far
    // larger than s, repeated identical sample sets would be astronomically
    // unlikely. (Offline-prepared samples — the approach §I rules out —
    // would fail this.)
    let data = irs::datagen::TAXI.generate(20_000, 26);
    let ait = Ait::new(&data);
    let q = irs::datagen::QueryWorkload::from_data(&data).generate(1, 8.0, 27)[0];
    let mut rng = StdRng::seed_from_u64(3000);
    let a = ait.sample(q, 100, &mut rng);
    let b = ait.sample(q, 100, &mut rng);
    assert_ne!(a, b, "consecutive queries returned identical samples");
}

#[test]
fn samples_with_replacement_cover_small_supports() {
    // s far above |q ∩ X|: sampling is with replacement, so every
    // candidate should appear.
    let data: Vec<Interval64> = (0..1000).map(|i| Interval::new(i, i + 3)).collect();
    let ait = Ait::new(&data);
    let q = Interval::new(500, 508);
    let support = support_of(&data, q);
    let mut rng = StdRng::seed_from_u64(4000);
    let mut seen: Vec<ItemId> = ait.sample(q, 2_000, &mut rng);
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen, support);
}
