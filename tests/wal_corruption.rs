//! Write-ahead-log corruption taxonomy, mirroring
//! `persistence_roundtrip.rs` for the replication log: every damage
//! shape — truncated record, flipped CRC, partial trailing frame,
//! future format version, out-of-order sequence number — surfaces its
//! exact typed error, recovery truncates back to the last valid record
//! and appends cleanly after it, and a recovered backend serves only
//! the valid prefix. Never a panic, never a record past the damage.

use irs::prelude::*;
use irs::{read_log, ReplicationError, WalTailer, WalWriter};
use std::path::{Path, PathBuf};

/// A unique, self-cleaning scratch directory per test case.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("irs-walcorr-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn batch(lo: i64) -> Vec<Mutation<i64>> {
    vec![
        Mutation::Insert {
            iv: Interval::new(lo, lo + 100),
        },
        Mutation::Delete {
            id: lo as ItemId % 7,
        },
    ]
}

/// Writes a fresh log with `records` sequential batches.
fn fresh_log(path: &Path, records: usize) -> Vec<u8> {
    let mut w = WalWriter::<i64>::create(path, 1).expect("create");
    for i in 0..records {
        w.append(None, &batch(i as i64 * 1_000)).expect("append");
    }
    drop(w);
    std::fs::read(path).expect("read back")
}

/// Byte ranges of each framed section in a log file: the log manifest
/// first, then one per record. Layout (see `DESIGN.md`, "Replication"):
/// 11-byte header (8 magic + 2 version + 1 role), then per section an
/// 8-byte LE payload length, the payload, and a 4-byte CRC-32.
fn section_bounds(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut at = 11;
    while at < bytes.len() {
        let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("length prefix")) as usize;
        bounds.push((at, at + 8 + len + 4));
        at += 8 + len + 4;
    }
    bounds
}

#[test]
fn truncated_record_is_typed_and_recovery_appends_after_the_valid_prefix() {
    let dir = TempDir::new("truncated");
    let path = dir.path().join("wal.irs");
    let pristine = fresh_log(&path, 3);

    // Cut into the middle of the last record's payload.
    std::fs::write(&path, &pristine[..pristine.len() - 7]).expect("truncate");
    let replay = read_log::<i64>(&path).expect("header is intact");
    assert_eq!(replay.records.len(), 2, "valid prefix only");
    assert_eq!(replay.last_seq(), 2);
    assert!(
        matches!(
            replay.stopped,
            Some(ReplicationError::Persist(PersistError::Truncated { .. }))
        ),
        "got {:?}",
        replay.stopped
    );

    // Recovery truncates the torn tail and reuses its sequence number.
    let (mut w, replay) = WalWriter::<i64>::recover(&path).expect("recover");
    assert_eq!(replay.records.len(), 2);
    assert_eq!(w.next_seq(), 3);
    assert_eq!(w.append(None, &batch(9_000)).expect("append"), 3);
    let replay = read_log::<i64>(&path).expect("read");
    assert!(replay.stopped.is_none());
    assert_eq!(replay.records.len(), 3);
    assert_eq!(replay.records[2].muts, batch(9_000));
}

#[test]
fn flipped_crc_is_typed_and_stops_both_scan_and_tailer() {
    let dir = TempDir::new("crc");
    let path = dir.path().join("wal.irs");
    let pristine = fresh_log(&path, 3);
    let bounds = section_bounds(&pristine);

    // Flip one payload byte inside record 2 (section 2 after manifest).
    let (start, end) = bounds[2];
    let mut bad = pristine.clone();
    bad[(start + 8 + end) / 2] ^= 0x10;
    std::fs::write(&path, &bad).expect("write");

    let replay = read_log::<i64>(&path).expect("header is intact");
    assert_eq!(replay.records.len(), 1);
    assert!(
        matches!(
            replay.stopped,
            Some(ReplicationError::Persist(PersistError::ChecksumMismatch {
                section: "log-record",
                ..
            }))
        ),
        "got {:?}",
        replay.stopped
    );

    // The streaming tailer refuses the same flip with the same type.
    let mut tailer = WalTailer::<i64>::open(&path, 1).expect("open");
    assert!(
        matches!(
            tailer.poll(),
            Err(ReplicationError::Persist(
                PersistError::ChecksumMismatch { .. }
            ))
        ),
        "tailer must refuse a flipped CRC"
    );

    // Recovery truncates to the record before the flip and appends.
    let (mut w, _) = WalWriter::<i64>::recover(&path).expect("recover");
    assert_eq!(w.next_seq(), 2);
    w.append(None, &batch(5_000)).expect("append");
    assert!(read_log::<i64>(&path).expect("read").stopped.is_none());
}

#[test]
fn partial_trailing_frame_means_wait_for_the_tailer_and_truncate_for_recovery() {
    let dir = TempDir::new("partial");
    let path = dir.path().join("wal.irs");
    let pristine = fresh_log(&path, 2);
    let bounds = section_bounds(&pristine);
    let (start, end) = *bounds.last().expect("records exist");
    let last_frame = pristine[start..end].to_vec();

    // Rewind to one record, then append only half of the next frame —
    // exactly what a reader sees mid-append.
    let mut half_written = pristine[..start].to_vec();
    half_written.extend_from_slice(&last_frame[..last_frame.len() / 2]);
    std::fs::write(&path, &half_written).expect("write");

    // A live tailer waits (no records, no error)...
    let mut tailer = WalTailer::<i64>::open(&path, 1).expect("open");
    let got = tailer
        .poll()
        .expect("partial trailing frame is not corruption");
    assert_eq!(got.len(), 1, "the complete first record still streams");
    assert!(tailer.poll().expect("wait").is_empty());

    // ...and once the writer finishes the frame, the record arrives.
    let mut full = half_written.clone();
    full.extend_from_slice(&last_frame[last_frame.len() / 2..]);
    std::fs::write(&path, &full).expect("write");
    let got = tailer.poll().expect("completed frame");
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, 2);

    // A crash at the half-written point instead: the scan reports a
    // torn tail and recovery truncates it away.
    std::fs::write(&path, &half_written).expect("write");
    let replay = read_log::<i64>(&path).expect("header is intact");
    assert_eq!(replay.records.len(), 1);
    assert!(matches!(
        replay.stopped,
        Some(ReplicationError::Persist(PersistError::Truncated { .. }))
    ));
    let (w, _) = WalWriter::<i64>::recover(&path).expect("recover");
    assert_eq!(w.next_seq(), 2);
    assert_eq!(
        std::fs::read(&path).expect("read").len(),
        start,
        "recovery must truncate the torn frame off the file"
    );
}

#[test]
fn future_format_version_is_a_fatal_typed_refusal() {
    let dir = TempDir::new("future");
    let path = dir.path().join("wal.irs");
    let mut bytes = fresh_log(&path, 1);
    // The format version lives at bytes 8..10, after the 8-byte magic.
    bytes[8] = 0xFE;
    bytes[9] = 0xFF;
    std::fs::write(&path, &bytes).expect("write");
    match read_log::<i64>(&path) {
        Err(ReplicationError::Persist(PersistError::UnsupportedVersion { found, supported })) => {
            assert_eq!(found, u16::from_le_bytes([0xFE, 0xFF]));
            assert_eq!(supported, 1);
        }
        other => panic!("future version must be fatal, got {other:?}"),
    }
    // No salvageable prefix: recovery refuses too, rather than
    // truncating a file it cannot interpret.
    assert!(WalWriter::<i64>::recover(&path).is_err());
}

#[test]
fn out_of_order_sequence_is_typed_and_recovery_reuses_the_gap() {
    let dir = TempDir::new("ooo");
    let path = dir.path().join("wal.irs");
    let pristine = fresh_log(&path, 3);
    let bounds = section_bounds(&pristine);

    // Splice record 3 directly after record 1 (drop record 2): a
    // reordered/spliced log, every frame individually valid.
    let mut spliced = pristine[..bounds[1].1].to_vec();
    spliced.extend_from_slice(&pristine[bounds[2].1..bounds[3].1]);
    std::fs::write(&path, &spliced).expect("write");

    let replay = read_log::<i64>(&path).expect("header is intact");
    assert_eq!(replay.records.len(), 1);
    assert_eq!(
        replay.stopped,
        Some(ReplicationError::OutOfOrderSequence {
            expected: 2,
            found: 3
        })
    );

    // Recovery truncates the spliced tail; the next append is seq 2.
    let (mut w, _) = WalWriter::<i64>::recover(&path).expect("recover");
    assert_eq!(w.append(None, &batch(4_000)).expect("append"), 2);
    let replay = read_log::<i64>(&path).expect("read");
    assert!(replay.stopped.is_none());
    assert_eq!(
        replay.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
        vec![1, 2]
    );
}

#[test]
fn foreign_and_role_confused_files_are_fatal_refusals() {
    let dir = TempDir::new("foreign");
    let path = dir.path().join("wal.irs");
    let pristine = fresh_log(&path, 1);

    // Garbage magic: not ours at all.
    let mut junk = pristine.clone();
    junk[..4].copy_from_slice(b"JUNK");
    std::fs::write(&path, &junk).expect("write");
    assert!(matches!(
        read_log::<i64>(&path),
        Err(ReplicationError::Persist(PersistError::BadMagic { .. }))
    ));

    // Right magic, wrong role byte (a shard snapshot is not a log).
    let mut wrong_role = pristine.clone();
    wrong_role[10] = 0x02;
    std::fs::write(&path, &wrong_role).expect("write");
    assert!(matches!(
        read_log::<i64>(&path),
        Err(ReplicationError::Persist(PersistError::Corrupt { .. }))
    ));

    // Wrong endpoint type: an i64 log read as u32.
    std::fs::write(&path, &pristine).expect("write");
    assert!(matches!(
        read_log::<u32>(&path),
        Err(ReplicationError::Persist(
            PersistError::EndpointMismatch { .. }
        ))
    ));
}

#[test]
fn corrupt_checkpoint_sidecar_is_typed_never_misread() {
    let dir = TempDir::new("ckpt");
    irs::write_checkpoint(dir.path(), 17).expect("write");
    assert_eq!(irs::read_checkpoint(dir.path()).expect("read"), Some(17));

    let path = dir.path().join("checkpoint.irs");
    let pristine = std::fs::read(&path).expect("read");

    // Flip a payload byte: the CRC refuses it.
    let mut bad = pristine.clone();
    let last = bad.len() - 5;
    bad[last] ^= 0x01;
    std::fs::write(&path, &bad).expect("write");
    assert!(matches!(
        irs::read_checkpoint(dir.path()),
        Err(PersistError::ChecksumMismatch { .. } | PersistError::Truncated { .. })
    ));

    // Trailing garbage after the value is corruption, not ignored.
    let mut trailing = pristine.clone();
    trailing.extend_from_slice(&[0u8; 3]);
    std::fs::write(&path, &trailing).expect("write");
    assert!(matches!(
        irs::read_checkpoint(dir.path()),
        Err(PersistError::Corrupt { .. } | PersistError::Truncated { .. })
    ));

    // A directory that never had one is Ok(None), not an error.
    let empty = TempDir::new("ckpt-none");
    assert_eq!(irs::read_checkpoint(empty.path()).expect("read"), None);
}

/// The recovery path end to end: a backend recovered from snapshot +
/// damaged log serves exactly the valid prefix — the acked state up to
/// the last valid record — and nothing past it.
#[test]
fn recovered_backend_serves_exactly_the_valid_log_prefix() {
    let dir = TempDir::new("prefix");
    let snap = dir.path().join("snap");
    let wal_path = dir.path().join("wal.irs");

    let data = irs::datagen::TAXI.generate(800, 3);
    let build = || {
        Irs::builder()
            .kind(IndexKind::Ait)
            .shards(2)
            .seed(5)
            .build(&data)
            .expect("build")
    };
    let client = build();
    client.save(&snap).expect("save");
    irs::write_checkpoint(&snap, 0).expect("checkpoint");

    let mut w = WalWriter::<i64>::create(&wal_path, 1).expect("create");
    let batches: Vec<Vec<Mutation<i64>>> = (0..5).map(|i| batch(i * 2_000)).collect();
    for muts in &batches {
        w.append(None, muts).expect("append");
    }
    drop(w);

    // Damage record 4 of 5: recovery must stop after record 3.
    let bytes = std::fs::read(&wal_path).expect("read");
    let bounds = section_bounds(&bytes);
    let (start, end) = bounds[4];
    let mut bad = bytes.clone();
    bad[(start + end) / 2] ^= 0x08;
    std::fs::write(&wal_path, &bad).expect("write");

    let (recovered, wal, replay) = Client::<i64>::recover(&snap, &wal_path).expect("recover");
    assert_eq!(replay.records.len(), 3);
    assert!(replay.stopped.is_some(), "the damage must be reported");
    assert_eq!(wal.next_seq(), 4, "the writer resumes after the prefix");

    // Oracle: the same snapshot state plus exactly the first 3 batches.
    let mut oracle = build();
    for muts in &batches[..3] {
        let _ = oracle.apply(muts);
    }
    assert_eq!(recovered.len(), oracle.len());
    let workload = irs::datagen::QueryWorkload::from_data(&data);
    let queries: Vec<Query<i64>> = workload
        .generate(6, 8.0, 0xACE)
        .into_iter()
        .map(|q| Query::Sample { q, s: 16 })
        .collect();
    assert_eq!(
        recovered.run_seeded(&queries, 77),
        oracle.run_seeded(&queries, 77),
        "recovered backend must serve exactly the valid prefix"
    );
}
