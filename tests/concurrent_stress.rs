//! Concurrency stress: the engine (and the client facade over it) is a
//! shared, clonable service — many caller threads run query batches
//! concurrently against one set of shards, mutations interleave through
//! the writer path, and none of it may deadlock, poison a lock, bias
//! the sampling distribution, or blur the failure model.
//!
//! CI runs this suite in release mode under a watchdog timeout, so a
//! deadlock fails the job instead of hanging it.

use irs::prelude::*;
use irs::sampling::stats::{chi_square_uniformity_ok, total_variation};
use irs::BruteForce;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const CALLERS: usize = 8;

fn dataset(n: usize, seed: u64) -> Vec<Interval64> {
    irs::datagen::TAXI.generate(n, seed)
}

fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
    v.sort_unstable();
    v
}

/// A query with a support size that makes per-bucket chi-square
/// expectations solid.
fn mid_size_query(data: &[Interval64], bf: &BruteForce<i64>, seed: u64) -> Interval64 {
    irs::datagen::QueryWorkload::from_data(data)
        .generate(64, 4.0, seed)
        .into_iter()
        .find(|&q| (80..=500).contains(&bf.range_count(q)))
        .expect("workload yields a mid-size support")
}

/// Compile-time contract: engine and client handles are shareable and
/// clonable across threads.
#[test]
fn handles_are_clone_send_sync() {
    fn assert_service<T: Clone + Send + Sync>() {}
    assert_service::<Engine<i64>>();
    assert_service::<Client<i64>>();
}

/// N caller threads hammer one engine with mixed batches: every
/// non-sampling answer must agree with the oracle, every sample must
/// come from `q ∩ X`, and the draws *pooled across all concurrent
/// callers* must stay unbiased (chi-square) — concurrency must not
/// skew the distribution.
#[test]
fn concurrent_mixed_batches_agree_with_oracle_and_stay_unbiased() {
    let data = dataset(2500, 0xC0);
    let bf = BruteForce::new(&data);
    let q_chi = mid_size_query(&data, &bf, 0x51);
    let support = sorted(bf.range_search(q_chi));
    let qs = irs::datagen::QueryWorkload::from_data(&data).generate(6, 8.0, 0xAB);
    for kind in [IndexKind::Ait, IndexKind::AitV, IndexKind::HintM] {
        let engine =
            Engine::try_new(&data, EngineConfig::new(kind).shards(4).seed(0xFEED)).unwrap();
        let pooled = Mutex::new(vec![0u64; support.len()]);
        let draws_per_caller = 6_000usize;
        std::thread::scope(|scope| {
            for t in 0..CALLERS {
                // Clone the handle into the thread — genuine shared
                // ownership, not scoped borrowing.
                let handle = engine.clone();
                let (bf, qs, data) = (&bf, &qs, &data);
                let (pooled, support) = (&pooled, &support);
                scope.spawn(move || {
                    let mut local = vec![0u64; support.len()];
                    for round in 0..10 {
                        let q = qs[(t + round) % qs.len()];
                        let out = handle.run(&[
                            Query::Count { q },
                            Query::Search { q },
                            Query::Sample { q, s: 16 },
                            Query::Stab { p: q.lo },
                        ]);
                        let expect = sorted(bf.range_search(q));
                        assert_eq!(out[0], Ok(QueryOutput::Count(expect.len())));
                        assert_eq!(
                            sorted(out[1].as_ref().unwrap().ids().unwrap().to_vec()),
                            expect
                        );
                        for &id in out[2].as_ref().unwrap().samples().unwrap() {
                            assert!(data[id as usize].overlaps(&q), "{kind}: stray sample");
                        }
                        assert_eq!(
                            sorted(out[3].as_ref().unwrap().ids().unwrap().to_vec()),
                            sorted(bf.stab(q.lo))
                        );
                    }
                    // The chi-square leg: every caller draws from the
                    // same query concurrently.
                    let samples = handle.sample(q_chi, draws_per_caller).unwrap();
                    assert_eq!(samples.len(), draws_per_caller);
                    for id in samples {
                        let pos = support.binary_search(&id).expect("sample inside support");
                        local[pos] += 1;
                    }
                    let mut pooled = pooled.lock().unwrap();
                    for (p, l) in pooled.iter_mut().zip(&local) {
                        *p += l;
                    }
                });
            }
        });
        let counts = pooled.into_inner().unwrap();
        let draws = (CALLERS * draws_per_caller) as u64;
        let uniform = vec![1.0 / support.len() as f64; support.len()];
        assert!(
            chi_square_uniformity_ok(&counts, draws),
            "{kind}: concurrent sampling biased (tv = {:.4})",
            total_variation(&counts, &uniform, draws)
        );
    }
}

/// `run_seeded` is a pure function of (data, batch, seed): the result
/// is byte-identical whether one thread calls it or eight threads call
/// it simultaneously — with unseeded traffic running alongside to
/// perturb any shared state that shouldn't exist.
#[test]
fn seeded_runs_are_byte_identical_under_concurrency() {
    let data = dataset(2000, 0xD1);
    let engine =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(3).seed(4)).unwrap();
    let qs = irs::datagen::QueryWorkload::from_data(&data).generate(4, 8.0, 0x11);
    let mut batch = Vec::new();
    for &q in &qs {
        batch.push(Query::Sample { q, s: 32 });
        batch.push(Query::Count { q });
        batch.push(Query::SampleWeighted { q, s: 8 }); // typed error, same every time
    }
    let reference = engine.run_seeded(&batch, 0xBEEF_CAFE);
    std::thread::scope(|scope| {
        for _ in 0..CALLERS {
            let handle = engine.clone();
            let (batch, reference) = (&batch, &reference);
            scope.spawn(move || {
                for _ in 0..20 {
                    assert_eq!(&handle.run_seeded(batch, 0xBEEF_CAFE), reference);
                }
            });
        }
        // Perturbation traffic: unseeded batches advancing the engine's
        // own stream concurrently.
        let noisy = engine.clone();
        let qs = &qs;
        scope.spawn(move || {
            for &q in qs.iter().cycle().take(50) {
                let _ = noisy.run(&[Query::Sample { q, s: 16 }]);
            }
        });
    });
    // And once more, alone, after all the concurrency.
    assert_eq!(engine.run_seeded(&batch, 0xBEEF_CAFE), reference);
}

/// Churn on the update-capable kinds while reader threads query
/// continuously (no barrier between them): readers must only ever see
/// `Ok` answers over intervals that exist, and after the churn settles
/// the engine must agree with the oracle over the final live set and
/// still sample unbiasedly — locks unpoisoned, nothing deadlocked.
#[test]
fn concurrent_queries_interleaved_with_churn() {
    // All inserted intervals share this geometry, so readers can
    // validate sampled ids they have no table for: any id beyond the
    // build-time id space is this interval.
    const INS: (i64, i64) = (5_000_000, 6_000_000);
    let data = dataset(2000, 0xE0);
    let n = data.len();
    let qs = irs::datagen::QueryWorkload::from_data(&data).generate(5, 8.0, 0x33);
    for kind in [IndexKind::Ait, IndexKind::AwitDynamic] {
        let engine = Engine::try_new(&data, EngineConfig::new(kind).shards(4).seed(9)).unwrap();
        let rounds = 12usize;
        let done = AtomicUsize::new(0);
        let live_inserted = std::thread::scope(|scope| {
            // Writer: each round, insert a pooled batch and remove half
            // of the previous round's inserts — sustained churn.
            let writer = engine.clone();
            let done_flag = &done;
            let writer_thread = scope.spawn(move || {
                let mut live: Vec<ItemId> = Vec::new();
                for round in 0..rounds {
                    let fresh: Vec<Interval64> =
                        (0..24).map(|_| Interval::new(INS.0, INS.1)).collect();
                    let ids = writer.extend_batch(&fresh).unwrap();
                    for &id in &ids {
                        assert!(id as usize >= n, "insert id collided with build ids");
                    }
                    let keep = ids.len() / 2;
                    for &id in &ids[keep..] {
                        writer.remove(id).unwrap();
                    }
                    live.extend_from_slice(&ids[..keep]);
                    if round % 3 == 0 {
                        // One-by-one path too.
                        live.push(writer.insert(Interval::new(INS.0, INS.1)).unwrap());
                    }
                }
                done_flag.store(1, Ordering::SeqCst);
                live
            });
            // Readers: continuous mixed traffic, validated against
            // invariants that hold at every churn state.
            for t in 0..4 {
                let handle = engine.clone();
                let (data, qs, done_flag) = (&data, &qs, &done);
                scope.spawn(move || {
                    let ins_iv = Interval::new(INS.0, INS.1);
                    let mut round = 0usize;
                    while done_flag.load(Ordering::SeqCst) == 0 || round < 5 {
                        let q = qs[(t + round) % qs.len()];
                        round += 1;
                        let out = handle.run(&[
                            Query::Count { q },
                            Query::Sample { q, s: 8 },
                            Query::Search { q },
                        ]);
                        let count = out[0].as_ref().unwrap().count().unwrap();
                        // Build data never churns, so the count is at
                        // least the static support (inserts only add).
                        let static_support = data.iter().filter(|iv| iv.overlaps(&q)).count();
                        assert!(count >= static_support, "count lost static intervals");
                        for &id in out[1].as_ref().unwrap().samples().unwrap() {
                            let iv = if (id as usize) < n {
                                data[id as usize]
                            } else {
                                ins_iv
                            };
                            assert!(iv.overlaps(&q), "sample outside query under churn");
                        }
                        for &id in out[2].as_ref().unwrap().ids().unwrap() {
                            let iv = if (id as usize) < n {
                                data[id as usize]
                            } else {
                                ins_iv
                            };
                            assert!(iv.overlaps(&q), "search hit outside query under churn");
                        }
                    }
                });
            }
            writer_thread.join().unwrap()
        });

        // Churn settled: full oracle agreement over the final live set…
        let ins_iv = Interval::new(INS.0, INS.1);
        let live_data: Vec<Interval64> = data
            .iter()
            .copied()
            .chain(live_inserted.iter().map(|_| ins_iv))
            .collect();
        let bf = BruteForce::new(&live_data);
        assert_eq!(engine.len(), live_data.len(), "{kind}: len after churn");
        for &q in &qs {
            assert_eq!(engine.count(q).unwrap(), bf.range_count(q), "{kind} {q:?}");
            assert_eq!(
                engine.search(q).unwrap().len(),
                bf.range_count(q),
                "{kind} {q:?}"
            );
        }
        // …and post-churn sampling is still unbiased over a support
        // that mixes build-time and inserted intervals.
        let q = Interval::new(INS.0 - 1_000_000, INS.0 + 1_000);
        let expect = bf.range_count(q);
        if expect >= 20 {
            let draws = 40_000usize;
            let samples = engine.sample(q, draws).unwrap();
            assert_eq!(samples.len(), draws);
            let mut by_inserted = [0u64; 2];
            for id in &samples {
                by_inserted[usize::from(*id as usize >= n)] += 1;
            }
            let inserted_frac = live_inserted.len() as f64 / expect as f64;
            let observed = by_inserted[1] as f64 / draws as f64;
            assert!(
                (observed - inserted_frac).abs() < 0.02,
                "{kind}: inserted mass {observed:.3} vs expected {inserted_frac:.3}"
            );
        }
    }
}

/// A crashed shard fails *deterministically* under concurrent callers:
/// once the crash hook returns, every batch from every thread — queries
/// and mutations alike — reports `ShardFailed` for the dead shard, no
/// caller deadlocks, and dropping the last handle returns.
#[test]
fn crashed_shard_is_deterministic_under_concurrent_callers() {
    let data = dataset(900, 0xF7);
    let engine =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(3).seed(2)).unwrap();
    let q = Interval::new(0, irs::datagen::TAXI.domain_size / 2);
    assert!(engine.count(q).is_ok());

    // Crash while queries are in flight from other threads.
    std::thread::scope(|scope| {
        for _ in 0..CALLERS {
            let handle = engine.clone();
            scope.spawn(move || {
                for _ in 0..30 {
                    for r in handle.run(&[Query::Count { q }, Query::Sample { q, s: 4 }]) {
                        // Mid-crash a batch either completes or reports
                        // the dead shard — never a partial/wrong answer
                        // (oracle agreement is pinned elsewhere), never
                        // a panic or hang.
                        if let Err(e) = r {
                            assert_eq!(e, QueryError::ShardFailed { shard: 1 });
                        }
                    }
                }
            });
        }
        engine.crash_shard_for_tests(1);
        // The hook has returned: from here on, *every* result from
        // *every* thread is the dead-shard error.
        for _ in 0..4 {
            let handle = engine.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    for r in handle.run(&[Query::Sample { q, s: 4 }, Query::Stab { p: q.lo }]) {
                        assert_eq!(r, Err(QueryError::ShardFailed { shard: 1 }));
                    }
                    // Mutations routed to the dead shard err typed too;
                    // concurrent writers must not deadlock on the seat.
                    let out = handle.apply(&[
                        Mutation::Insert {
                            iv: Interval::new(0, 1),
                        },
                        Mutation::Insert {
                            iv: Interval::new(2, 3),
                        },
                        Mutation::Insert {
                            iv: Interval::new(4, 5),
                        },
                    ]);
                    assert!(out
                        .iter()
                        .any(|r| matches!(r, Err(UpdateError::ShardFailed { shard: 1 }))));
                }
            });
        }
    });
    assert_eq!(engine.count(q), Err(QueryError::ShardFailed { shard: 1 }));
    // Drop of the last handles must not hang on the dead worker.
    drop(engine);
}

/// The clonable `Client` front end: clones moved into threads share one
/// backend; queries run concurrently and mutations serialize through
/// the writer seat, on both the monolithic and sharded backends.
#[test]
fn client_clones_share_one_backend_across_threads() {
    let data = dataset(1500, 0xAA);
    let bf = BruteForce::new(&data);
    let qs = irs::datagen::QueryWorkload::from_data(&data).generate(4, 8.0, 0x77);
    for shards in [1usize, 4] {
        let client = Irs::builder()
            .kind(IndexKind::Ait)
            .shards(shards)
            .seed(3)
            .build(&data)
            .unwrap();
        let inserted = Mutex::new(Vec::<ItemId>::new());
        std::thread::scope(|scope| {
            for t in 0..CALLERS {
                let handle = client.clone();
                let (bf, qs) = (&bf, &qs);
                let inserted = &inserted;
                scope.spawn(move || {
                    for round in 0..8 {
                        let q = qs[(t + round) % qs.len()];
                        // Queries through a clone, concurrently…
                        assert!(handle.count(q).unwrap() >= bf.range_count(q));
                        assert!(!handle.sample(q, 8).unwrap().is_empty() || bf.range_count(q) == 0);
                        // …and the odd mutation through the writer
                        // seat, serialized across clones.
                        if t == round {
                            let id = handle
                                .writer()
                                .insert(Interval::new(-10_000, -9_000))
                                .unwrap();
                            inserted.lock().unwrap().push(id);
                        }
                        // Empty batches return immediately, locks or no.
                        assert!(handle.run(&[]).is_empty());
                    }
                });
            }
        });
        let ids = inserted.into_inner().unwrap();
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), ids.len(), "K={shards}: duplicate ids issued");
        assert_eq!(client.len(), data.len() + ids.len(), "K={shards}");
        let found = client.search(Interval::new(-10_000, -9_000)).unwrap();
        assert_eq!(sorted(found), sorted(ids), "K={shards}");
    }
}

/// Empty batches return immediately — even on an engine whose every
/// shard is dead, where any lock or channel touch would surface as an
/// error (the deterministic dead-shard check runs *after* the
/// empty-batch fast path).
#[test]
fn empty_batch_short_circuits_before_any_shared_state() {
    let data = dataset(300, 0x1C);
    let engine =
        Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(2).seed(1)).unwrap();
    engine.crash_shard_for_tests(0);
    engine.crash_shard_for_tests(1);
    assert!(engine.run(&[]).is_empty());
    assert!(engine.run_seeded(&[], 7).is_empty());
    // Non-empty batches still fail loudly, proving the engine really is
    // dead and the empty-batch result was the fast path, not luck.
    let q = Interval::new(0, 100);
    assert_eq!(engine.count(q), Err(QueryError::ShardFailed { shard: 0 }));

    for shards in [1usize, 3] {
        let client = Irs::builder()
            .kind(IndexKind::Ait)
            .shards(shards)
            .build(&data)
            .unwrap();
        assert!(client.run(&[]).is_empty());
        assert!(client.run_seeded(&[], 9).is_empty());
    }
}

/// `SampleStream::draw_into` refills a caller-owned buffer in place:
/// chunk-sized refills, buffer capacity reused, draws identical in
/// distribution to the iterator path, and a clean end-of-stream
/// contract (empty buffer, no error) on an empty support.
#[test]
fn sample_stream_draw_into_reuses_buffers() {
    let data = dataset(2000, 0x2D);
    let bf = BruteForce::new(&data);
    let q = mid_size_query(&data, &bf, 0x91);
    let support = sorted(bf.range_search(q));
    for shards in [1usize, 4] {
        let client = Irs::builder()
            .kind(IndexKind::Ait)
            .shards(shards)
            .seed(41)
            .build(&data)
            .unwrap();
        let mut stream = client.sample_stream(q).unwrap().with_chunk(256);
        let mut buf: Vec<ItemId> = Vec::new();
        let mut counts = vec![0u64; support.len()];
        let mut total = 0u64;
        let mut peak_capacity = 0usize;
        for round in 0..160 {
            // Mix iterator pulls in: handover must not drop draws.
            if round % 16 == 0 {
                let head = stream.next().expect("stream is unbounded");
                let pos = support.binary_search(&head).expect("inside support");
                counts[pos] += 1;
                total += 1;
            }
            stream.draw_into(&mut buf);
            assert_eq!(buf.len(), 256, "K={shards}: short chunk");
            for &id in &buf {
                let pos = support.binary_search(&id).expect("inside support");
                counts[pos] += 1;
            }
            total += buf.len() as u64;
            if round == 4 {
                peak_capacity = buf.capacity();
            } else if round > 4 {
                assert_eq!(
                    buf.capacity(),
                    peak_capacity,
                    "K={shards}: buffer reallocated in steady state"
                );
            }
        }
        assert!(stream.error().is_none());
        assert!(
            chi_square_uniformity_ok(&counts, total),
            "K={shards}: draw_into distribution biased"
        );

        // Empty support: one empty refill ends the stream, no error.
        let mut empty = client
            .sample_stream(Interval::new(-9_000_000, -8_000_000))
            .unwrap();
        let mut out = vec![0 as ItemId; 4]; // pre-filled: must be cleared
        empty.draw_into(&mut out);
        assert!(out.is_empty());
        assert!(empty.error().is_none());
        assert_eq!(empty.next(), None);
    }
}
