//! Bench-regression smoke: re-runs a 3-row subset of the pinned
//! benchmark matrix and fails on a >20% QPS regression against the
//! committed baseline (`BENCH_2026-08-07.json`).
//!
//! Opt-in: set `IRS_BENCH_REGRESSION=1` (and build `--release` — the
//! test refuses to compare debug numbers against a release baseline).
//! CI runs it explicitly; a plain `cargo test` skips it, so timing
//! noise never fails an unrelated change.
//!
//! The measurement mirrors `irs-cli bench-engine` exactly — same
//! dataset profile, seed, query workload, batch size, and
//! `threaded_qps` loop — so the comparison is apples to apples.

use irs::prelude::*;

const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_2026-08-07.json");
/// Re-measured subset: 1-shard / 1-thread / batch 256 at n = 200k for
/// one paper structure, one static baseline, one dynamic extension.
const KINDS: [&str; 3] = ["ait", "kds", "awit-dynamic"];
const N: usize = 200_000;
const BATCH: usize = 256;
const QUERIES: usize = 1024;
const S: usize = 1000;
const SEED: u64 = 42;
/// Allowed slowdown: measured QPS must stay above this fraction of the
/// pinned baseline.
const FLOOR: f64 = 0.8;

struct BaselineRow {
    kind: String,
    n: usize,
    shards: usize,
    threads: usize,
    batch: usize,
    sample_qps: f64,
    search_qps: f64,
}

fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = obj[obj.find(&pat)? + pat.len()..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = obj[obj.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A deliberately narrow JSON reader for the committed baseline file
/// (the workspace is offline — no serde): splits the `rows` array into
/// per-object chunks and pulls the fields this test compares.
fn baseline_rows(doc: &str) -> Vec<BaselineRow> {
    let rows = &doc[doc.find("\"rows\"").expect("baseline has a rows array")..];
    rows.split('{')
        .filter(|chunk| field_str(chunk, "experiment").as_deref() == Some("bench-engine"))
        .filter_map(|chunk| {
            Some(BaselineRow {
                kind: field_str(chunk, "kind")?,
                n: field_num(chunk, "n")? as usize,
                shards: field_num(chunk, "shards")? as usize,
                threads: field_num(chunk, "threads")? as usize,
                batch: field_num(chunk, "batch")? as usize,
                sample_qps: field_num(chunk, "sample_qps")?,
                search_qps: field_num(chunk, "search_qps")?,
            })
        })
        .collect()
}

#[test]
fn pinned_engine_qps_has_not_regressed() {
    if std::env::var("IRS_BENCH_REGRESSION").is_err() {
        eprintln!("IRS_BENCH_REGRESSION not set; skipping the bench-regression smoke");
        return;
    }
    if cfg!(debug_assertions) {
        panic!(
            "IRS_BENCH_REGRESSION requires a --release build: debug QPS \
             cannot be compared against the release baseline"
        );
    }

    let doc =
        std::fs::read_to_string(BASELINE).unwrap_or_else(|e| panic!("cannot read {BASELINE}: {e}"));
    let rows = baseline_rows(&doc);
    assert!(!rows.is_empty(), "no bench-engine rows in {BASELINE}");

    // The exact workload `irs-cli bench-engine` measures.
    let data = irs::datagen::TAXI.generate(N, SEED);
    let queries =
        irs::datagen::QueryWorkload::from_data(&data).generate(QUERIES, 1.0, SEED ^ 0xBE7C);

    let mut report = Vec::new();
    for kind_name in KINDS {
        let base = rows
            .iter()
            .find(|r| {
                r.kind == kind_name
                    && r.n == N
                    && r.shards == 1
                    && r.threads == 1
                    && r.batch == BATCH
            })
            .unwrap_or_else(|| panic!("no pinned row for {kind_name} n={N} 1-shard 1-thread"));
        let kind = IndexKind::parse(kind_name).expect("pinned kind parses");
        let engine = Engine::try_new(&data, EngineConfig::new(kind).shards(1).seed(SEED))
            .expect("build engine");
        let sample_qps = irs::engine_throughput::threaded_qps(&engine, &queries, 1, BATCH, |&q| {
            Query::Sample { q, s: S }
        });
        let search_qps = irs::engine_throughput::threaded_qps(&engine, &queries, 1, BATCH, |&q| {
            Query::Search { q }
        });
        eprintln!(
            "{kind_name}: sample {sample_qps:.0} q/s (baseline {:.0}), \
             search {search_qps:.0} q/s (baseline {:.0})",
            base.sample_qps, base.search_qps
        );
        for (op, measured, pinned) in [
            ("sample", sample_qps, base.sample_qps),
            ("search", search_qps, base.search_qps),
        ] {
            if measured < FLOOR * pinned {
                report.push(format!(
                    "{kind_name} {op}: {measured:.0} q/s is below {:.0}% of the \
                     pinned {pinned:.0} q/s",
                    FLOOR * 100.0
                ));
            }
        }
    }
    assert!(
        report.is_empty(),
        "QPS regressed past the {:.0}% floor:\n  {}",
        FLOOR * 100.0,
        report.join("\n  ")
    );
}

#[test]
fn baseline_file_parses_and_covers_the_smoke_matrix() {
    // Always-on guard (no env gate): the committed baseline must keep
    // the rows the smoke compares against, or the opt-in run would
    // panic on a missing row instead of reporting a regression.
    let doc =
        std::fs::read_to_string(BASELINE).unwrap_or_else(|e| panic!("cannot read {BASELINE}: {e}"));
    let rows = baseline_rows(&doc);
    for kind in KINDS {
        assert!(
            rows.iter().any(|r| r.kind == kind
                && r.n == N
                && r.shards == 1
                && r.threads == 1
                && r.batch == BATCH),
            "baseline lost the pinned row for {kind}"
        );
    }
}
