//! Bench-regression smoke: re-runs a 3-row subset of the pinned
//! benchmark matrix and fails on a >20% QPS regression against the
//! committed baseline (`BENCH_2026-08-07.json`).
//!
//! Opt-in: set `IRS_BENCH_REGRESSION=1` (and build `--release` — the
//! test refuses to compare debug numbers against a release baseline).
//! CI runs it explicitly; a plain `cargo test` skips it, so timing
//! noise never fails an unrelated change.
//!
//! The measurement mirrors `irs-cli bench-engine` exactly — same
//! dataset profile, seed, query workload, batch size, and
//! `threaded_qps` loop — so the comparison is apples to apples.

use irs::prelude::*;

const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_2026-08-07.json");
/// Re-measured subset: 1-shard / 1-thread / batch 256 at n = 200k for
/// one paper structure, one static baseline, one dynamic extension.
const KINDS: [&str; 3] = ["ait", "kds", "awit-dynamic"];
const N: usize = 200_000;
const BATCH: usize = 256;
const QUERIES: usize = 1024;
const S: usize = 1000;
const SEED: u64 = 42;
/// Allowed slowdown: measured QPS must stay above this fraction of the
/// pinned baseline.
const FLOOR: f64 = 0.8;

struct BaselineRow {
    kind: String,
    n: usize,
    shards: usize,
    threads: usize,
    batch: usize,
    sample_qps: f64,
    search_qps: f64,
}

/// Reads the committed baseline through the shared reader
/// (`irs_bench::baseline`, the same one `irs-cli bench-engine
/// --compare` uses) and pulls the fields this test compares.
fn baseline_rows(doc: &str) -> Vec<BaselineRow> {
    irs_bench::baseline::baseline_rows(doc)
        .expect("baseline parses")
        .iter()
        .filter(|row| row.get("experiment").and_then(|v| v.as_str()) == Some("bench-engine"))
        .filter_map(|row| {
            Some(BaselineRow {
                kind: row.get("kind")?.as_str()?.to_string(),
                n: row.get("n")?.as_usize()?,
                shards: row.get("shards")?.as_usize()?,
                threads: row.get("threads")?.as_usize()?,
                batch: row.get("batch")?.as_usize()?,
                sample_qps: row.get("sample_qps")?.as_f64()?,
                search_qps: row.get("search_qps")?.as_f64()?,
            })
        })
        .collect()
}

#[test]
fn pinned_engine_qps_has_not_regressed() {
    if std::env::var("IRS_BENCH_REGRESSION").is_err() {
        eprintln!("IRS_BENCH_REGRESSION not set; skipping the bench-regression smoke");
        return;
    }
    if cfg!(debug_assertions) {
        panic!(
            "IRS_BENCH_REGRESSION requires a --release build: debug QPS \
             cannot be compared against the release baseline"
        );
    }

    let doc =
        std::fs::read_to_string(BASELINE).unwrap_or_else(|e| panic!("cannot read {BASELINE}: {e}"));
    let rows = baseline_rows(&doc);
    assert!(!rows.is_empty(), "no bench-engine rows in {BASELINE}");

    // The exact workload `irs-cli bench-engine` measures.
    let data = irs::datagen::TAXI.generate(N, SEED);
    let queries =
        irs::datagen::QueryWorkload::from_data(&data).generate(QUERIES, 1.0, SEED ^ 0xBE7C);

    let mut report = Vec::new();
    for kind_name in KINDS {
        let base = rows
            .iter()
            .find(|r| {
                r.kind == kind_name
                    && r.n == N
                    && r.shards == 1
                    && r.threads == 1
                    && r.batch == BATCH
            })
            .unwrap_or_else(|| panic!("no pinned row for {kind_name} n={N} 1-shard 1-thread"));
        let kind = IndexKind::parse(kind_name).expect("pinned kind parses");
        let engine = Engine::try_new(&data, EngineConfig::new(kind).shards(1).seed(SEED))
            .expect("build engine");
        // Best-of-three rounds: on a shared or virtualized box a single
        // pass swings far more than the 20% floor this test enforces
        // (steal time, frequency phases), and the pinned numbers were
        // themselves taken at the machine's sustained speed. The floor
        // is meant to catch code regressions, not scheduler weather.
        let mut sample_qps = 0.0f64;
        let mut search_qps = 0.0f64;
        for _ in 0..3 {
            let s = irs::engine_throughput::threaded_qps(&engine, &queries, 1, BATCH, |&q| {
                Query::Sample { q, s: S }
            });
            sample_qps = sample_qps.max(s);
            let r = irs::engine_throughput::threaded_qps(&engine, &queries, 1, BATCH, |&q| {
                Query::Search { q }
            });
            search_qps = search_qps.max(r);
        }
        eprintln!(
            "{kind_name}: sample {sample_qps:.0} q/s (baseline {:.0}), \
             search {search_qps:.0} q/s (baseline {:.0})",
            base.sample_qps, base.search_qps
        );
        // Machine-readable trail for CI: with `--nocapture`, these rows
        // land on stdout and `grep '^{'` collects them into the
        // workflow's bench-smoke artifact.
        irs_bench::JsonRow::new("bench-regression")
            .str("kind", kind_name)
            .int("n", N)
            .int("shards", 1)
            .int("batch", BATCH)
            .int("threads", 1)
            .int("s", S)
            .int("queries", QUERIES)
            .num("sample_qps", sample_qps)
            .num("baseline_sample_qps", base.sample_qps)
            .num("search_qps", search_qps)
            .num("baseline_search_qps", base.search_qps)
            .emit();
        for (op, measured, pinned) in [
            ("sample", sample_qps, base.sample_qps),
            ("search", search_qps, base.search_qps),
        ] {
            if measured < FLOOR * pinned {
                report.push(format!(
                    "{kind_name} {op}: {measured:.0} q/s is below {:.0}% of the \
                     pinned {pinned:.0} q/s",
                    FLOOR * 100.0
                ));
            }
        }
    }
    assert!(
        report.is_empty(),
        "QPS regressed past the {:.0}% floor:\n  {}",
        FLOOR * 100.0,
        report.join("\n  ")
    );
}

#[test]
fn baseline_file_parses_and_covers_the_smoke_matrix() {
    // Always-on guard (no env gate): the committed baseline must keep
    // the rows the smoke compares against, or the opt-in run would
    // panic on a missing row instead of reporting a regression.
    let doc =
        std::fs::read_to_string(BASELINE).unwrap_or_else(|e| panic!("cannot read {BASELINE}: {e}"));
    let rows = baseline_rows(&doc);
    for kind in KINDS {
        assert!(
            rows.iter().any(|r| r.kind == kind
                && r.n == N
                && r.shards == 1
                && r.threads == 1
                && r.batch == BATCH),
            "baseline lost the pinned row for {kind}"
        );
    }
}
