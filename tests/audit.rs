//! Tier-1 gate: `irs-audit` must pass on the committed tree.
//!
//! The auditor's rule logic is unit-tested against fixtures inside
//! `crates/audit`; this suite runs the real rules over the real
//! workspace so a violation introduced anywhere fails `cargo test`
//! with the same `file:line: [rule] message` diagnostics the CI step
//! prints.

use std::path::Path;

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// The whole tree is clean: no panic-path violations, no bare lock
/// unwraps, no undocumented crates, no registry drift, no stale
/// pragmas.
#[test]
fn workspace_is_audit_clean() {
    let report = irs_audit::audit_workspace(root()).expect("audit must be able to run");
    assert!(
        report.violations.is_empty(),
        "irs-audit found {} violation(s):\n{}",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Guard against the walker silently scanning nothing (e.g. after a
    // source-tree reshuffle): the workspace has dozens of sources.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

/// `contracts/registry.txt` pins every wire error code, request tag,
/// response tag, snapshot role byte, and the snapshot format version
/// currently in source — and the families have their expected sizes,
/// so an extraction regression cannot silently empty the registry.
#[test]
fn registry_pins_every_contract() {
    let entries = irs_audit::extract_registry(root()).expect("registry extraction");
    let committed = std::fs::read_to_string(root().join(irs_audit::REGISTRY_PATH))
        .expect("contracts/registry.txt must be committed");
    for e in &entries {
        assert!(
            committed.contains(&e.to_string()),
            "registry is missing the line `{e}`"
        );
    }
    let count = |family: &str| entries.iter().filter(|e| e.family == family).count();
    assert!(
        count("error-code") >= 35,
        "error codes: {}",
        count("error-code")
    );
    assert!(
        count("request-tag") >= 16,
        "request tags: {}",
        count("request-tag")
    );
    assert!(
        count("response-tag") >= 7,
        "response tags: {}",
        count("response-tag")
    );
    assert!(
        count("snapshot-role") >= 3,
        "snapshot roles: {}",
        count("snapshot-role")
    );
    assert_eq!(count("format-version"), 1);
}

/// Diagnostics carry file, line, and rule — the format both CI and
/// humans grep for.
#[test]
fn violations_name_file_line_and_rule() {
    let (violations, _) = irs_audit::audit_source(
        "crates/wire/src/frame.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    assert_eq!(violations.len(), 1);
    let rendered = violations[0].to_string();
    assert!(
        rendered.starts_with("crates/wire/src/frame.rs:1: [no-panic] "),
        "unexpected diagnostic format: {rendered}"
    );
}
