//! `irs-cli` — command-line front end for the library.
//!
//! ```text
//! irs-cli generate --profile taxi --n 100000 --out trips.csv
//! irs-cli count    --data trips.csv --lo 100 --hi 5000
//! irs-cli sample   --data trips.csv --lo 100 --hi 5000 --s 10 [--weighted]
//! irs-cli stab     --data trips.csv --at 250
//! ```
//!
//! Data files are CSV with one `lo,hi[,weight]` triple per line (header
//! lines starting with a letter are skipped). No external dependencies —
//! argument parsing is by hand.

use irs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::io::{BufRead, BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "count" => cmd_count(&opts),
        "sample" => cmd_sample(&opts),
        "stab" => cmd_stab(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
irs-cli — independent range sampling on interval data

USAGE:
  irs-cli generate --profile <book|btc|renfe|taxi> --n <N> --out <FILE> [--seed <S>]
  irs-cli count    --data <FILE> --lo <LO> --hi <HI>
  irs-cli sample   --data <FILE> --lo <LO> --hi <HI> --s <S> [--weighted] [--seed <S>]
  irs-cli stab     --data <FILE> --at <P>

Data files: CSV lines `lo,hi[,weight]`.";

/// Flat `--key value` option bag.
struct Opts(Vec<(String, String)>);

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got `{a}`"))?;
            if key == "weighted" {
                pairs.push((key.to_string(), "true".to_string()));
                continue;
            }
            let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            pairs.push((key.to_string(), val.clone()));
        }
        Ok(Opts(pairs))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn req(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.req(key)?.parse().map_err(|_| format!("--{key}: not a number"))
    }

    fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not a number")),
        }
    }
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let profile = match opts.req("profile")? {
        "book" => irs::datagen::BOOK,
        "btc" => irs::datagen::BTC,
        "renfe" => irs::datagen::RENFE,
        "taxi" => irs::datagen::TAXI,
        other => return Err(format!("unknown profile `{other}`")),
    };
    let n: usize = opts.num("n")?;
    let seed: u64 = opts.num_or("seed", 42)?;
    let path = opts.req("out")?;
    let data = profile.generate(n, seed);
    let weights = irs::datagen::uniform_weights(n, seed ^ 1);
    let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let mut w = BufWriter::new(file);
    for (iv, wt) in data.iter().zip(&weights) {
        writeln!(w, "{},{},{}", iv.lo, iv.hi, wt).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;
    println!("wrote {n} {}-profile intervals to {path}", profile.name);
    Ok(())
}

fn load(path: &str) -> Result<(Vec<Interval64>, Vec<f64>), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut data = Vec::new();
    let mut weights = Vec::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with(|c: char| c.is_alphabetic()) {
            continue; // header or blank
        }
        let mut parts = line.split(',');
        let err = |what: &str| format!("{path}:{}: {what}", lineno + 1);
        let lo: i64 = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| err("bad lo"))?;
        let hi: i64 = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| err("bad hi"))?;
        if lo > hi {
            return Err(err("lo > hi"));
        }
        let w: f64 = match parts.next() {
            Some(v) => v.trim().parse().map_err(|_| err("bad weight"))?,
            None => 1.0,
        };
        data.push(Interval::new(lo, hi));
        weights.push(w);
    }
    if data.is_empty() {
        return Err(format!("{path}: no intervals"));
    }
    Ok((data, weights))
}

fn cmd_count(opts: &Opts) -> Result<(), String> {
    let (data, _) = load(opts.req("data")?)?;
    let q = Interval::new(opts.num::<i64>("lo")?, opts.num::<i64>("hi")?);
    let ait = Ait::new(&data);
    println!("{}", ait.range_count(q));
    Ok(())
}

fn cmd_sample(opts: &Opts) -> Result<(), String> {
    let (data, weights) = load(opts.req("data")?)?;
    let q = Interval::new(opts.num::<i64>("lo")?, opts.num::<i64>("hi")?);
    let s: usize = opts.num("s")?;
    let seed: u64 = opts.num_or("seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = if opts.get("weighted").is_some() {
        let awit = Awit::new(&data, &weights);
        awit.sample_weighted(q, s, &mut rng)
    } else {
        let ait = Ait::new(&data);
        ait.sample(q, s, &mut rng)
    };
    if ids.is_empty() {
        eprintln!("(empty result set)");
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in ids {
        let iv = data[id as usize];
        writeln!(out, "{}\t{},{}\t{}", id, iv.lo, iv.hi, weights[id as usize])
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_stab(opts: &Opts) -> Result<(), String> {
    let (data, _) = load(opts.req("data")?)?;
    let p: i64 = opts.num("at")?;
    let ait = Ait::new(&data);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in irs::StabbingQuery::stab(&ait, p) {
        let iv = data[id as usize];
        writeln!(out, "{}\t{},{}", id, iv.lo, iv.hi).map_err(|e| e.to_string())?;
    }
    Ok(())
}
