//! `irs-cli` — command-line front end for the library.
//!
//! ```text
//! irs-cli generate     --profile taxi --n 100000 --out trips.csv
//! irs-cli count        --data trips.csv --lo 100 --hi 5000
//! irs-cli sample       --data trips.csv --lo 100 --hi 5000 --s 10 [--weighted]
//! irs-cli stab         --data trips.csv --at 250
//! irs-cli bench-engine --n 1000000 --shards 1,2,4,8 --batches 64,256
//! irs-cli bench-updates --n 1000000 --updates 100000 --shards 1,4
//! irs-cli snapshot save --data trips.csv --kind ait --shards 4 --out snap/
//! irs-cli snapshot inspect --dir snap/
//! irs-cli snapshot load --dir snap/ --lo 100 --hi 5000 --s 10
//! irs-cli serve        --data trips.csv --addr 127.0.0.1:7878
//! irs-cli remote 127.0.0.1:7878 count --lo 100 --hi 5000
//! ```
//!
//! Data files are CSV with one `lo,hi[,weight]` triple per line (header
//! lines starting with a letter may open the file). No external
//! dependencies — argument parsing is by hand.

use irs::cli::Opts;
use irs::prelude::*;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `remote` takes a positional address and action before its options.
    if cmd == "remote" {
        let result = match (args.get(1), args.get(2)) {
            (Some(addr), Some(action)) => Opts::parse(args.get(3..).unwrap_or(&[]))
                .map_err(RemoteError::from)
                .and_then(|opts| cmd_remote(addr, action, &opts)),
            _ => Err(RemoteError::from(
                "remote needs an address and an action: \
                 irs-cli remote <HOST:PORT> <ACTION> [options]"
                    .to_string(),
            )),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                // Runtime errors (connection refused, typed wire
                // refusals) are self-describing; the usage dump is for
                // argument mistakes only.
                eprintln!("error: {}", e.message);
                if let Some(code) = e.code {
                    // Scriptable: the numeric wire code alone after the
                    // prefix, greppable as `^wire-code: `.
                    eprintln!("wire-code: {}", code as u16);
                }
                ExitCode::FAILURE
            }
        };
    }
    // `snapshot` takes a positional action before its options.
    if cmd == "snapshot" {
        let result = match args.get(1) {
            None => Err("snapshot needs an action: save | load | inspect".to_string()),
            Some(action) => Opts::parse(args.get(2..).unwrap_or(&[]))
                .and_then(|opts| cmd_snapshot(action, &opts)),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "count" => cmd_count(&opts),
        "sample" => cmd_sample(&opts),
        "stab" => cmd_stab(&opts),
        "bench-engine" => cmd_bench_engine(&opts),
        "bench-updates" => cmd_bench_updates(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
irs-cli — independent range sampling on interval data

USAGE:
  irs-cli generate --profile <book|btc|renfe|taxi> --n <N> --out <FILE> [--seed <S>]
  irs-cli count    --data <FILE> --lo <LO> --hi <HI>
  irs-cli sample   --data <FILE> --lo <LO> --hi <HI> --s <S> [--weighted] [--seed <S>]
  irs-cli stab     --data <FILE> --at <P>
  irs-cli bench-engine [--profile <P>] [--n <N>] [--kind <ait|ait-v|awit|awit-dynamic|kds|hint-m|interval-tree>]
                       [--shards <K1,K2,..>] [--batches <B1,B2,..>] [--threads <T1,T2,..>]
                       [--s <S>] [--queries <Q>] [--extent <PCT>] [--seed <S>]
                       [--compare <BASELINE.json>]
  irs-cli bench-updates [--profile <P>] [--n <N>] [--kind <ait|awit-dynamic>] [--weighted]
                        [--updates <U>] [--shards <K1,K2,..>] [--seed <S>]
  irs-cli snapshot save    --data <FILE> --out <DIR> [--kind <K>] [--shards <N>]
                           [--weighted] [--seed <S>]
  irs-cli snapshot inspect --dir <DIR>
  irs-cli snapshot load    --dir <DIR> [--lo <LO> --hi <HI> --s <S>]
  irs-cli serve    (--data <FILE> | --snapshot <DIR> | --catalog <DIR>) [--addr <HOST:PORT>]
                   [--kind <K>] [--shards <N>] [--weighted] [--seed <S>] [--wal <FILE>]
  irs-cli serve    --replica-of <HOST:PORT> --replica-dir <DIR> [--addr <HOST:PORT>]
  irs-cli remote <HOST:PORT> <ACTION> [options]
     ACTION: health | stats | shutdown | promote | replication-status
           | count --lo <LO> --hi <HI> [--collection <NAME>]
           | sample --lo <LO> --hi <HI> --s <S> [--seed <S>] [--weighted] [--collection <NAME>]
           | stab --at <P> [--collection <NAME>]
           | insert --lo <LO> --hi <HI> [--weight <W>] [--collection <NAME>]
           | delete --id <ID> [--collection <NAME>]
           | save --out <DIR> | inspect --dir <DIR> | load --dir <DIR>
           | create --name <NAME> [--kind <K|auto>] [--shards <N>] [--seed <S>]
                    [--weighted] [--update-rate <R>] [--extent <X>]
           | drop --name <NAME> | ls | reindex --name <NAME> --kind <K>
           | save-catalog --out <DIR> | load-catalog --dir <DIR>

bench-engine measures engine queries/sec (sample + search workloads) at
each shard count × batch size × caller-thread count on a synthetic
dataset (default: 1,000,000 taxi-profile intervals, shard counts
1..num_cpus doubling, threads 1..num_cpus doubling, s = 1000). The
--threads axis drives the shared engine from that many concurrent
caller threads — the multi-caller scaling curve of the concurrent read
path — and every cell is also emitted as a machine-readable JSONL row
(`grep '^{'` to collect). With --compare <BASELINE.json> it instead
re-runs every bench-engine row of a pinned baseline file (the committed
BENCH_*.json shape, a bare row array, or collected JSONL) and prints
per-row sample/search QPS deltas plus a geometric-mean summary; the
matrix comes from the baseline rows, only --seed/--extent apply.

bench-updates measures live-update throughput (Table VII's axes: one-by-one
insertion, pooled batch insertion, deletion) through the unified client at
each shard count, emitting both a human table and machine-readable JSONL
rows (`grep '^{'` to collect).

snapshot saves a built backend (any kind, any shard count) to a
directory of CRC-checked files, inspects a snapshot's manifest without
loading it, and loads one back — skipping index construction — ready to
serve (optionally proving it with one sample query). See DESIGN.md,
\"On-disk snapshot format\".

serve runs the irs-server daemon in-process over a freshly built backend
(--data, with the same build options as snapshot save), a loaded
snapshot (--snapshot), or a multi-tenant catalog directory (--catalog:
an existing catalog.irs is loaded, a fresh directory starts empty, and
the tenancy is saved back on drain); default address 127.0.0.1:7878,
port 0 for an OS-assigned port. It serves until a remote `shutdown`
arrives, then drains gracefully. remote speaks the wire protocol to any
running server — snapshot and catalog paths name directories on the
*server's* filesystem. On a catalog server, data actions take
--collection <NAME> (untagged actions address the collection named
\"default\"), and create/drop/ls/reindex manage the tenancy —
`--kind auto` (the default) lets the planner pick from --update-rate,
--extent, and --weighted. A typed server refusal prints its numeric
code on stderr as `wire-code: <N>` and exits non-zero. See DESIGN.md,
\"Wire protocol\" and \"Catalog\".

--wal <FILE> puts the server on the replication writer seat: every
acked mutation batch is appended to the write-ahead log (fsynced
before the ack leaves) so replicas can bootstrap and follow, and a
crash recovers to the last acked batch. On startup an existing log is
recovered — with --snapshot the checkpoint sidecar picks the replay
start (point-in-time recovery); a torn trailing record is truncated.
serve --replica-of bootstraps a *read-only* replica into --replica-dir
(snapshot fetch, then live log tailing); `remote promote` hands it the
writer seat, and `remote replication-status` prints any node's role
and log position. See DESIGN.md, \"Replication\".

Data files: CSV lines `lo,hi[,weight]`.";

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let profile = match opts.req("profile")? {
        "book" => irs::datagen::BOOK,
        "btc" => irs::datagen::BTC,
        "renfe" => irs::datagen::RENFE,
        "taxi" => irs::datagen::TAXI,
        other => return Err(format!("unknown profile `{other}`")),
    };
    let n: usize = opts.num("n")?;
    let seed: u64 = opts.num_or("seed", 42)?;
    let path = opts.req("out")?;
    let data = profile.generate(n, seed);
    let weights = irs::datagen::uniform_weights(n, seed ^ 1);
    let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let mut w = BufWriter::new(file);
    for (iv, wt) in data.iter().zip(&weights) {
        writeln!(w, "{},{},{}", iv.lo, iv.hi, wt).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;
    println!("wrote {n} {}-profile intervals to {path}", profile.name);
    Ok(())
}

/// CSV loading now lives in `irs::datagen` (shared with `irs-server`).
fn load(path: &str) -> Result<(Vec<Interval64>, Vec<f64>), String> {
    irs::datagen::load_csv(path)
}

fn cmd_count(opts: &Opts) -> Result<(), String> {
    let (data, _) = load(opts.req("data")?)?;
    let q = Interval::new(opts.num::<i64>("lo")?, opts.num::<i64>("hi")?);
    let client = Irs::builder()
        .kind(IndexKind::Ait)
        .build(&data)
        .map_err(|e| e.to_string())?;
    println!("{}", client.count(q).map_err(|e| e.to_string())?);
    Ok(())
}

fn cmd_sample(opts: &Opts) -> Result<(), String> {
    let (data, weights) = load(opts.req("data")?)?;
    let q = Interval::new(opts.num::<i64>("lo")?, opts.num::<i64>("hi")?);
    let s: usize = opts.num("s")?;
    let seed: u64 = opts.num_or("seed", 42)?;
    // One facade, two problems: AWIT for weighted IRS, AIT for uniform.
    // (The loader has already validated the weights with file:line
    // errors; the builder re-validates as its own gate.)
    let weighted = opts.get("weighted").is_some();
    let builder = if weighted {
        Irs::builder()
            .kind(IndexKind::Awit)
            .weights(weights.clone())
    } else {
        Irs::builder().kind(IndexKind::Ait)
    };
    let client = builder.seed(seed).build(&data).map_err(|e| e.to_string())?;
    let ids = if weighted {
        client.sample_weighted(q, s)
    } else {
        client.sample(q, s)
    }
    .map_err(|e| e.to_string())?;
    if ids.is_empty() {
        eprintln!("(empty result set)");
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in ids {
        let iv = data[id as usize];
        writeln!(out, "{}\t{},{}\t{}", id, iv.lo, iv.hi, weights[id as usize])
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_stab(opts: &Opts) -> Result<(), String> {
    let (data, _) = load(opts.req("data")?)?;
    let p: i64 = opts.num("at")?;
    let client = Irs::builder()
        .kind(IndexKind::Ait)
        .build(&data)
        .map_err(|e| e.to_string())?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in client.stab(p).map_err(|e| e.to_string())? {
        let iv = data[id as usize];
        writeln!(out, "{}\t{},{}", id, iv.lo, iv.hi).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_snapshot(action: &str, opts: &Opts) -> Result<(), String> {
    match action {
        "save" => {
            let (data, weights) = load(opts.req("data")?)?;
            let dir = opts.req("out")?;
            let kind = match opts.get("kind") {
                None => IndexKind::Ait,
                Some(name) => {
                    IndexKind::parse(name).ok_or_else(|| format!("unknown kind `{name}`"))?
                }
            };
            let shards: usize = opts.num_or("shards", 1)?;
            let seed: u64 = opts.num_or("seed", 42)?;
            let mut builder = Irs::builder().kind(kind).shards(shards).seed(seed);
            if opts.get("weighted").is_some() {
                builder = builder.weights(weights);
            }
            let built = std::time::Instant::now();
            let client = builder.build(&data).map_err(|e| e.to_string())?;
            let build_ms = built.elapsed().as_secs_f64() * 1e3;
            let saved = std::time::Instant::now();
            client.save(dir).map_err(|e| e.to_string())?;
            let save_ms = saved.elapsed().as_secs_f64() * 1e3;
            let bytes: u64 = std::fs::read_dir(dir)
                .map_err(|e| e.to_string())?
                .filter_map(|f| f.and_then(|f| f.metadata()).ok())
                .map(|m| m.len())
                .sum();
            println!(
                "saved {} × {} shard(s) ({} intervals, {bytes} bytes) to {dir} \
                 [build {build_ms:.0} ms, save {save_ms:.0} ms]",
                kind,
                client.shard_count(),
                client.len(),
            );
            Ok(())
        }
        "inspect" => {
            let info = irs::inspect_snapshot(opts.req("dir")?).map_err(|e| e.to_string())?;
            let m = &info.manifest;
            println!("format-version: {}", info.format_version);
            println!("snapshot-id:    {:#018x}", m.snapshot_id);
            println!("kind:           {}", m.kind);
            println!("endpoint:       {}", m.endpoint);
            println!("weighted:       {}", m.weighted);
            println!("shards:         {}", m.shards);
            println!("seed:           {}", m.seed);
            println!("batch-counter:  {}", m.batch_counter);
            println!("live intervals: {}", m.len);
            println!("shard lengths:  {:?}", m.shard_lens);
            Ok(())
        }
        "load" => {
            let dir = opts.req("dir")?;
            let loaded = std::time::Instant::now();
            let client = Client::<i64>::load(dir).map_err(|e| e.to_string())?;
            let load_ms = loaded.elapsed().as_secs_f64() * 1e3;
            println!(
                "loaded {} × {} shard(s), {} live intervals [{load_ms:.0} ms]",
                client.kind(),
                client.shard_count(),
                client.len(),
            );
            if let (Some(_), Some(_)) = (opts.get("lo"), opts.get("hi")) {
                let q = Interval::new(opts.num::<i64>("lo")?, opts.num::<i64>("hi")?);
                let s: usize = opts.num_or("s", 10)?;
                let ids = client.sample(q, s).map_err(|e| e.to_string())?;
                println!("sample({q:?}, {s}) -> {ids:?}");
            }
            Ok(())
        }
        other => Err(format!(
            "unknown snapshot action `{other}` (want save | load | inspect)"
        )),
    }
}

/// Comma-separated positive-count list option, e.g. `--shards 1,2,4,8`
/// (same syntax and validation as the bench binaries' env knobs).
fn num_list(opts: &Opts, key: &str, default: Vec<usize>) -> Result<Vec<usize>, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => irs::engine_throughput::parse_count_list(v).map_err(|e| format!("--{key}: {e}")),
    }
}

fn cmd_bench_engine(opts: &Opts) -> Result<(), String> {
    if let Some(path) = opts.get("compare") {
        return cmd_bench_engine_compare(opts, path);
    }
    let profile = match opts.get("profile").unwrap_or("taxi") {
        "book" => irs::datagen::BOOK,
        "btc" => irs::datagen::BTC,
        "renfe" => irs::datagen::RENFE,
        "taxi" => irs::datagen::TAXI,
        other => return Err(format!("unknown profile `{other}`")),
    };
    let kind = match opts.get("kind") {
        None => IndexKind::Ait,
        Some(name) => IndexKind::parse(name).ok_or_else(|| format!("unknown kind `{name}`"))?,
    };
    let n: usize = opts.num_or("n", 1_000_000)?;
    let s: usize = opts.num_or("s", 1_000)?;
    let query_count: usize = opts.num_or("queries", 2_048)?;
    let extent: f64 = opts.num_or("extent", 1.0)?;
    if !(0.0..=100.0).contains(&extent) {
        return Err(format!(
            "--extent: {extent} is not a percentage in [0, 100]"
        ));
    }
    let seed: u64 = opts.num_or("seed", 42)?;
    let cpus = irs::engine_throughput::cpu_count();
    let shard_counts = num_list(
        opts,
        "shards",
        irs::engine_throughput::default_shard_sweep(),
    )?;
    let batch_sizes = num_list(opts, "batches", vec![64, 256, 1024])?;
    // Caller-thread axis: how many threads hammer the shared engine at
    // once. Defaults to the same doubling sweep as shards, so the
    // multi-caller scaling curve lands in the JSONL by default.
    let thread_counts = num_list(
        opts,
        "threads",
        irs::engine_throughput::default_shard_sweep(),
    )?;

    println!(
        "# engine throughput — kind = {kind}, profile = {}, n = {n}, s = {s}",
        profile.name
    );
    println!("# {query_count} queries at {extent}% extent, seed = {seed}, {cpus} CPUs");
    let data = profile.generate(n, seed);
    let queries =
        irs::datagen::QueryWorkload::from_data(&data).generate(query_count, extent, seed ^ 0xBE7C);
    // `threaded_qps` can't run more callers than there are queries;
    // clamp (and dedup) here so every printed/emitted row reports a
    // concurrency level that actually ran.
    let mut thread_counts: Vec<usize> = thread_counts
        .into_iter()
        .map(|t| t.min(queries.len().max(1)))
        .collect();
    thread_counts.dedup();
    println!(
        "{:>7} {:>7} {:>8} {:>14} {:>14}",
        "shards", "batch", "threads", "sample q/s", "search q/s"
    );
    // Scaling ratio baseline: the *first thread count's* run at the
    // same shard count and batch size, labeled with that count (only
    // "vs 1-thread" when the list starts at 1).
    let base_threads = thread_counts[0];
    for &shards in &shard_counts {
        let engine = Engine::try_new(&data, EngineConfig::new(kind).shards(shards).seed(seed))
            .map_err(|e| e.to_string())?;
        for &batch in &batch_sizes {
            let mut baseline_sample: Option<f64> = None;
            for &threads in &thread_counts {
                let sample_qps =
                    irs::engine_throughput::threaded_qps(&engine, &queries, threads, batch, |&q| {
                        Query::Sample { q, s }
                    });
                let search_qps =
                    irs::engine_throughput::threaded_qps(&engine, &queries, threads, batch, |&q| {
                        Query::Search { q }
                    });
                let speedup = match baseline_sample {
                    None => {
                        baseline_sample = Some(sample_qps);
                        String::new()
                    }
                    Some(base) => {
                        format!(
                            "  ({:.2}x sample vs {base_threads}-thread)",
                            sample_qps / base
                        )
                    }
                };
                println!(
                    "{shards:>7} {batch:>7} {threads:>8} {sample_qps:>14.0} {search_qps:>14.0}{speedup}"
                );
                irs_bench::JsonRow::new("bench-engine")
                    .str("kind", kind.name())
                    .str("profile", profile.name)
                    .int("n", n)
                    .int("shards", shards)
                    .int("batch", batch)
                    .int("threads", threads)
                    .int("s", s)
                    .int("queries", queries.len())
                    .num("sample_qps", sample_qps)
                    .num("search_qps", search_qps)
                    .emit();
            }
        }
    }
    Ok(())
}

/// `bench-engine --compare <baseline.json>`: re-runs every
/// `bench-engine` row of a pinned baseline file (the committed
/// `BENCH_*.json` shape, a bare row array, or JSONL) on this machine
/// and prints per-row QPS deltas. Rows keep the baseline's own matrix
/// (kind, n, shards, batch, threads, s, queries); only `--seed` and
/// `--extent` come from the command line, defaulting to the pinned
/// values.
fn cmd_bench_engine_compare(opts: &Opts, path: &str) -> Result<(), String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("--compare: {path}: {e}"))?;
    let rows =
        irs_bench::baseline::baseline_rows(&doc).map_err(|e| format!("--compare: {path}: {e}"))?;
    let seed: u64 = opts.num_or("seed", 42)?;
    let extent: f64 = opts.num_or("extent", 1.0)?;

    let field = |row: &irs_bench::baseline::JsonValue, key: &'static str| {
        row.get(key)
            .cloned()
            .ok_or_else(|| format!("--compare: row missing `{key}`"))
    };
    println!("# engine throughput vs baseline {path} (seed = {seed})");
    println!(
        "{:>13} {:>8} {:>7} {:>7} {:>8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
        "kind",
        "n",
        "shards",
        "batch",
        "threads",
        "base smp/s",
        "now smp/s",
        "Δsmp",
        "base srch/s",
        "now srch/s",
        "Δsrch"
    );
    // Builds are the expensive part; baselines group rows by (kind, n,
    // shards), so caching the last dataset and engine re-runs the whole
    // pinned matrix with one build per group.
    let mut data_key: Option<(String, usize)> = None;
    let mut data: Vec<Interval64> = Vec::new();
    let mut engine_key: Option<(String, String, usize, usize)> = None;
    let mut engine: Option<Engine<i64>> = None;
    let mut sample_ratios: Vec<f64> = Vec::new();
    let mut search_ratios: Vec<f64> = Vec::new();
    for row in &rows {
        if row.get("experiment").and_then(|v| v.as_str()) != Some("bench-engine") {
            continue;
        }
        let kind_name = field(row, "kind")?
            .as_str()
            .map(str::to_string)
            .ok_or("--compare: `kind` is not a string")?;
        let kind = IndexKind::parse(&kind_name)
            .ok_or_else(|| format!("--compare: unknown kind `{kind_name}`"))?;
        let profile_name = field(row, "profile")?
            .as_str()
            .map(str::to_lowercase)
            .ok_or("--compare: `profile` is not a string")?;
        let profile = match profile_name.as_str() {
            "book" => irs::datagen::BOOK,
            "btc" => irs::datagen::BTC,
            "renfe" => irs::datagen::RENFE,
            "taxi" => irs::datagen::TAXI,
            other => return Err(format!("--compare: unknown profile `{other}`")),
        };
        let as_count = |key: &'static str| -> Result<usize, String> {
            field(row, key)?
                .as_usize()
                .ok_or_else(|| format!("--compare: `{key}` is not a count"))
        };
        let n = as_count("n")?;
        let shards = as_count("shards")?;
        let batch = as_count("batch")?;
        let threads = as_count("threads")?;
        let s = as_count("s")?;
        let query_count = as_count("queries")?;
        let base_sample = field(row, "sample_qps")?
            .as_f64()
            .ok_or("--compare: `sample_qps` is not a number")?;
        let base_search = field(row, "search_qps")?
            .as_f64()
            .ok_or("--compare: `search_qps` is not a number")?;

        let dkey = (profile_name.clone(), n);
        if data_key.as_ref() != Some(&dkey) {
            data = profile.generate(n, seed);
            data_key = Some(dkey);
            engine_key = None;
        }
        let ekey = (kind_name.clone(), profile_name.clone(), n, shards);
        if engine_key.as_ref() != Some(&ekey) {
            engine = Some(
                Engine::try_new(&data, EngineConfig::new(kind).shards(shards).seed(seed))
                    .map_err(|e| e.to_string())?,
            );
            engine_key = Some(ekey);
        }
        let engine = engine.as_ref().expect("engine built above");
        let queries = irs::datagen::QueryWorkload::from_data(&data).generate(
            query_count,
            extent,
            seed ^ 0xBE7C,
        );
        let threads = threads.min(queries.len().max(1));
        let sample_qps =
            irs::engine_throughput::threaded_qps(engine, &queries, threads, batch, |&q| {
                Query::Sample { q, s }
            });
        let search_qps =
            irs::engine_throughput::threaded_qps(engine, &queries, threads, batch, |&q| {
                Query::Search { q }
            });
        let pct = |now: f64, base: f64| (now / base - 1.0) * 100.0;
        println!(
            "{:>13} {:>8} {:>7} {:>7} {:>8} {:>12.0} {:>12.0} {:>+7.1}% {:>12.0} {:>12.0} {:>+7.1}%",
            kind_name, n, shards, batch, threads,
            base_sample, sample_qps, pct(sample_qps, base_sample),
            base_search, search_qps, pct(search_qps, base_search),
        );
        sample_ratios.push(sample_qps / base_sample);
        search_ratios.push(search_qps / base_search);
        irs_bench::JsonRow::new("bench-engine-compare")
            .str("kind", kind.name())
            .str("profile", profile.name)
            .int("n", n)
            .int("shards", shards)
            .int("batch", batch)
            .int("threads", threads)
            .int("s", s)
            .int("queries", query_count)
            .num("baseline_sample_qps", base_sample)
            .num("sample_qps", sample_qps)
            .num("baseline_search_qps", base_search)
            .num("search_qps", search_qps)
            .emit();
    }
    if sample_ratios.is_empty() {
        return Err(format!("--compare: no bench-engine rows in {path}"));
    }
    let geomean =
        |ratios: &[f64]| (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!(
        "# geometric mean vs baseline over {} rows: sample {:.2}x, search {:.2}x",
        sample_ratios.len(),
        geomean(&sample_ratios),
        geomean(&search_ratios),
    );
    Ok(())
}

/// Table VII through the unified client: one-by-one insertion, pooled
/// batch insertion, and deletion throughput per shard count, as a human
/// table plus `JsonRow` JSONL for the bench trajectory.
fn cmd_bench_updates(opts: &Opts) -> Result<(), String> {
    let profile = match opts.get("profile").unwrap_or("taxi") {
        "book" => irs::datagen::BOOK,
        "btc" => irs::datagen::BTC,
        "renfe" => irs::datagen::RENFE,
        "taxi" => irs::datagen::TAXI,
        other => return Err(format!("unknown profile `{other}`")),
    };
    let kind = match opts.get("kind") {
        None => IndexKind::Ait,
        Some(name) => IndexKind::parse(name).ok_or_else(|| format!("unknown kind `{name}`"))?,
    };
    if !kind.capabilities(false).update {
        return Err(format!(
            "kind `{kind}` is a static snapshot; update-capable kinds: ait, awit-dynamic"
        ));
    }
    let weighted = opts.get("weighted").is_some();
    if weighted && !kind.supports_mutation(true, UpdateOp::InsertWeighted) {
        return Err(format!("kind `{kind}` cannot ingest weighted intervals"));
    }
    let n: usize = opts.num_or("n", 1_000_000)?;
    let updates: usize = opts.num_or("updates", 100_000)?;
    let seed: u64 = opts.num_or("seed", 42)?;
    let shard_counts = num_list(opts, "shards", vec![1, irs::engine_throughput::cpu_count()])?;

    println!(
        "# live-update throughput — kind = {kind}, profile = {}, n = {n}, {updates} updates{}",
        profile.name,
        if weighted { ", weighted" } else { "" }
    );
    let data = profile.generate(n, seed);
    let weights = irs::datagen::uniform_weights(n, seed ^ 1);
    let fresh = profile.generate(updates, seed ^ 0xF5E5);
    println!(
        "{:>7} {:>16} {:>16} {:>16}",
        "shards", "insert ops/s", "batch-ins ops/s", "delete ops/s"
    );
    for &shards in &shard_counts {
        let mut builder = Irs::builder().kind(kind).shards(shards).seed(seed);
        if weighted {
            builder = builder.weights(weights.clone());
        }
        let mut client = builder.build(&data).map_err(|e| e.to_string())?;

        // One-by-one insertion (the expensive path of Table VII).
        let t = std::time::Instant::now();
        let mut ids = Vec::with_capacity(updates);
        for (i, &iv) in fresh.iter().enumerate() {
            let id = if weighted {
                client.insert_weighted(iv, 1.0 + (i % 100) as f64)
            } else {
                client.insert(iv)
            }
            .map_err(|e| e.to_string())?;
            ids.push(id);
        }
        let one_by_one = updates as f64 / t.elapsed().as_secs_f64();

        // Deletion of exactly those intervals.
        let t = std::time::Instant::now();
        for &id in &ids {
            client.remove(id).map_err(|e| e.to_string())?;
        }
        let deletes = updates as f64 / t.elapsed().as_secs_f64();

        // Pooled batch insertion on a fresh client (so the pools start
        // cold, matching the one-by-one run's starting state).
        let mut builder = Irs::builder().kind(kind).shards(shards).seed(seed);
        if weighted {
            builder = builder.weights(weights.clone());
        }
        let mut client = builder.build(&data).map_err(|e| e.to_string())?;
        let t = std::time::Instant::now();
        client.extend_batch(&fresh).map_err(|e| e.to_string())?;
        let batched = updates as f64 / t.elapsed().as_secs_f64();

        println!("{shards:>7} {one_by_one:>16.0} {batched:>16.0} {deletes:>16.0}");
        for (mode, ops) in [
            ("insert", one_by_one),
            ("insert-batch", batched),
            ("delete", deletes),
        ] {
            irs_bench::JsonRow::new("bench-updates")
                .str("kind", kind.name())
                .str("profile", profile.name)
                .int("n", n)
                .int("shards", shards)
                .int("updates", updates)
                .str("mode", mode)
                .str("weighted", if weighted { "yes" } else { "no" })
                .num("ops_per_sec", ops)
                .num("us_per_op", 1e6 / ops)
                .emit();
        }
    }
    Ok(())
}

/// Builds (from `--data`) or loads (from `--snapshot`) the backend the
/// server will serve — same build options as `snapshot save`.
fn serve_backend(opts: &Opts) -> Result<Client<i64>, String> {
    match (opts.get("snapshot"), opts.get("data")) {
        (Some(dir), None) => Client::<i64>::load(dir).map_err(|e| e.to_string()),
        (None, Some(path)) => {
            let (data, weights) = load(path)?;
            let kind = match opts.get("kind") {
                None => IndexKind::Ait,
                Some(name) => {
                    IndexKind::parse(name).ok_or_else(|| format!("unknown kind `{name}`"))?
                }
            };
            let mut builder = Irs::builder()
                .kind(kind)
                .shards(opts.num_or("shards", 1)?)
                .seed(opts.num_or("seed", 42)?);
            if opts.get("weighted").is_some() {
                builder = builder.weights(weights);
            }
            builder.build(&data).map_err(|e| e.to_string())
        }
        _ => Err("serve needs exactly one of --data <FILE> or --snapshot <DIR>".to_string()),
    }
}

fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let addr = opts.get("addr").unwrap_or("127.0.0.1:7878");
    if let Some(primary) = opts.get("replica-of") {
        return cmd_serve_replica(primary, opts.req("replica-dir")?, addr);
    }
    if let Some(dir) = opts.get("catalog") {
        return cmd_serve_catalog(dir, addr, opts.get("wal"));
    }
    if let Some(wal_path) = opts.get("wal") {
        return cmd_serve_primary(opts, wal_path, addr);
    }
    let client = serve_backend(opts)?;
    let stats = client.stats();
    let handle = irs::serve(client, addr).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "irs-server listening on {} — {} × {} shard(s), {} intervals{}",
        handle.local_addr(),
        stats.kind,
        stats.shards,
        stats.len,
        if stats.weighted { ", weighted" } else { "" },
    );
    println!("serving until a remote `shutdown` arrives (irs-cli remote <addr> shutdown)");
    handle.join();
    println!("drained; bye");
    Ok(())
}

/// What the write-ahead log recovery found, on stdout/stderr before the
/// server banner (a truncated tail is recovery *working*, but the
/// operator should still see it happened).
fn report_recovery(replay: &irs::WalReplay<i64>) {
    if !replay.records.is_empty() {
        println!(
            "wal: recovered {} logged record(s) through seq {}",
            replay.records.len(),
            replay.last_seq(),
        );
    }
    if let Some(stopped) = &replay.stopped {
        eprintln!("wal: log tail truncated at the last valid record ({stopped})");
    }
}

/// `serve --wal`: takes the replication writer seat over a single
/// backend. With `--snapshot` this is point-in-time recovery — the
/// checkpoint sidecar picks where log replay resumes; with `--data`
/// the whole log replays onto the freshly built index.
fn cmd_serve_primary(opts: &Opts, wal_path: &str, addr: &str) -> Result<(), String> {
    let (client, wal) = match (opts.get("snapshot"), opts.get("data")) {
        (Some(dir), None) => {
            let (client, wal, replay) =
                Client::<i64>::recover(dir, wal_path).map_err(|e| e.to_string())?;
            report_recovery(&replay);
            (client, wal)
        }
        (None, Some(_)) => {
            let mut client = serve_backend(opts)?;
            let (wal, replay) =
                irs::WalWriter::<i64>::recover(wal_path).map_err(|e| e.to_string())?;
            for record in &replay.records {
                let _ = client.apply(&record.muts);
            }
            report_recovery(&replay);
            (client, wal)
        }
        _ => {
            return Err("serve needs exactly one of --data <FILE> or --snapshot <DIR>".to_string())
        }
    };
    let stats = client.stats();
    let handle = irs::serve_primary(client, addr, wal).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "irs-server (primary, wal {wal_path}) listening on {} — {} × {} shard(s), {} intervals{}",
        handle.local_addr(),
        stats.kind,
        stats.shards,
        stats.len,
        if stats.weighted { ", weighted" } else { "" },
    );
    println!("serving until a remote `shutdown` arrives (irs-cli remote <addr> shutdown)");
    handle.join();
    println!("drained; bye");
    Ok(())
}

/// `serve --replica-of`: bootstraps from the primary's snapshot into
/// `dir`, replays the log tail, then follows live — read-only until a
/// remote `promote`.
fn cmd_serve_replica(primary: &str, dir: &str, addr: &str) -> Result<(), String> {
    let handle = irs::serve_replica::<i64>(addr, primary, dir).map_err(|e| e.to_string())?;
    println!(
        "irs-server (replica of {primary}) listening on {} — bootstrap dir {dir}",
        handle.local_addr(),
    );
    println!(
        "read-only until promoted (irs-cli remote <addr> promote); \
         serving until a remote `shutdown` arrives"
    );
    handle.join();
    println!("drained; bye");
    Ok(())
}

/// Serves (and on drain re-saves) a whole catalog directory: an existing
/// `catalog.irs` manifest is loaded, an empty or fresh directory starts
/// an empty tenancy that remote `create` calls populate. With a
/// `--wal` path the server takes the replication writer seat and log
/// replay resumes past the directory's checkpoint sidecar.
fn cmd_serve_catalog(dir: &str, addr: &str, wal_path: Option<&str>) -> Result<(), String> {
    let manifest = std::path::Path::new(dir).join(irs::catalog::CATALOG_MANIFEST_FILE);
    let catalog = if manifest.exists() {
        irs::Catalog::<i64>::load(dir).map_err(|e| e.to_string())?
    } else {
        irs::Catalog::<i64>::new()
    };
    let names: Vec<String> = catalog.list().into_iter().map(|i| i.name).collect();
    let handle = match wal_path {
        None => irs::serve_catalog(catalog, addr).map_err(|e| format!("bind {addr}: {e}"))?,
        Some(wal_path) => {
            let (wal, replay) =
                irs::WalWriter::<i64>::recover(wal_path).map_err(|e| e.to_string())?;
            let checkpoint = irs::read_checkpoint(std::path::Path::new(dir))
                .map_err(|e| e.to_string())?
                .unwrap_or(0);
            for record in &replay.records {
                if record.seq > checkpoint {
                    let name = record
                        .collection
                        .as_deref()
                        .unwrap_or(irs::DEFAULT_COLLECTION);
                    let _ = catalog.apply_in(name, &record.muts);
                }
            }
            report_recovery(&replay);
            irs::serve_primary_catalog(catalog, addr, wal)
                .map_err(|e| format!("bind {addr}: {e}"))?
        }
    };
    println!(
        "irs-server listening on {} — catalog of {} collection(s) {:?}",
        handle.local_addr(),
        names.len(),
        names,
    );
    println!("serving until a remote `shutdown` arrives (irs-cli remote <addr> shutdown)");
    // Save the tenancy the server *ends* with (LoadCatalog may have
    // swapped it), so the directory round-trips across restarts.
    let catalog = handle.catalog().expect("catalog server");
    handle.join();
    catalog.save(dir).map_err(|e| e.to_string())?;
    println!("drained; catalog saved to {dir}; bye");
    Ok(())
}

/// A remote-command failure: the message plus, when the server answered
/// with a typed refusal, its stable numeric wire code.
struct RemoteError {
    code: Option<irs::ErrorCode>,
    message: String,
}

impl From<String> for RemoteError {
    fn from(message: String) -> Self {
        RemoteError {
            code: None,
            message,
        }
    }
}

/// Runs one query, routed to a named collection when one is given.
fn remote_one(
    remote: &mut irs::RemoteClient<i64>,
    collection: Option<&str>,
    seed: Option<u64>,
    query: Query<i64>,
) -> Result<QueryOutput, irs::WireError> {
    let results = match (collection, seed) {
        (None, None) => remote.run(&[query]),
        (None, Some(s)) => remote.run_seeded(&[query], s),
        (Some(c), None) => remote.run_in(c, &[query]),
        (Some(c), Some(s)) => remote.run_seeded_in(c, &[query], s),
    }?;
    results.into_iter().next().expect("one result per query")
}

/// Applies one mutation, routed to a named collection when one is given.
fn remote_one_mut(
    remote: &mut irs::RemoteClient<i64>,
    collection: Option<&str>,
    m: Mutation<i64>,
) -> Result<UpdateOutput, irs::WireError> {
    let results = match collection {
        None => remote.apply(&[m]),
        Some(c) => remote.apply_in(c, &[m]),
    }?;
    results.into_iter().next().expect("one result per mutation")
}

fn cmd_remote(addr: &str, action: &str, opts: &Opts) -> Result<(), RemoteError> {
    let mut remote = irs::RemoteClient::<i64>::connect(addr)
        .map_err(|e| RemoteError::from(format!("connect {addr}: {e}")))?;
    let wire = |e: irs::WireError| RemoteError {
        code: Some(e.code),
        message: e.to_string(),
    };
    let collection = opts.get("collection");
    match action {
        "health" => {
            remote.health().map_err(wire)?;
            println!("ok");
        }
        "stats" => {
            let s = remote.stats().map_err(wire)?;
            println!("kind:            {}", s.kind);
            println!("endpoint:        {}", s.endpoint);
            println!("shards:          {}", s.shards);
            println!("live intervals:  {}", s.len);
            println!("shard lengths:   {:?}", s.shard_lens);
            println!("weighted:        {}", s.weighted);
            println!(
                "connections:     {} accepted, {} active",
                s.connections_accepted, s.connections_active
            );
            println!(
                "requests:        {} ({} queries, {} mutations)",
                s.requests, s.queries, s.mutations
            );
            println!("protocol errors: {}", s.protocol_errors);
            println!("uptime:          {:.1} s", s.uptime_ms as f64 / 1e3);
            println!("draining:        {}", s.draining);
        }
        "count" => {
            let q = Interval::new(opts.num::<i64>("lo")?, opts.num::<i64>("hi")?);
            match remote_one(&mut remote, collection, None, Query::Count { q }).map_err(wire)? {
                QueryOutput::Count(n) => println!("{n}"),
                other => return Err(format!("unexpected output {other:?}").into()),
            }
        }
        "sample" => {
            let q = Interval::new(opts.num::<i64>("lo")?, opts.num::<i64>("hi")?);
            let s: usize = opts.num("s")?;
            let query = if opts.get("weighted").is_some() {
                Query::SampleWeighted { q, s }
            } else {
                Query::Sample { q, s }
            };
            let seed = match opts.get("seed") {
                Some(_) => Some(opts.num("seed")?),
                None => None,
            };
            match remote_one(&mut remote, collection, seed, query).map_err(wire)? {
                QueryOutput::Samples(ids) => {
                    if ids.is_empty() {
                        eprintln!("(empty result set)");
                    }
                    for id in ids {
                        println!("{id}");
                    }
                }
                other => return Err(format!("unexpected output {other:?}").into()),
            }
        }
        "stab" => {
            let p: i64 = opts.num("at")?;
            match remote_one(&mut remote, collection, None, Query::Stab { p }).map_err(wire)? {
                QueryOutput::Ids(ids) => {
                    for id in ids {
                        println!("{id}");
                    }
                }
                other => return Err(format!("unexpected output {other:?}").into()),
            }
        }
        "insert" => {
            let iv = Interval::new(opts.num::<i64>("lo")?, opts.num::<i64>("hi")?);
            let m = match opts.get("weight") {
                Some(_) => Mutation::InsertWeighted {
                    iv,
                    weight: opts.num("weight")?,
                },
                None => Mutation::Insert { iv },
            };
            match remote_one_mut(&mut remote, collection, m).map_err(wire)? {
                UpdateOutput::Inserted(id) => println!("inserted id {id}"),
                other => return Err(format!("unexpected output {other:?}").into()),
            }
        }
        "delete" => {
            let id: irs::ItemId = opts.num("id")?;
            remote_one_mut(&mut remote, collection, Mutation::Delete { id }).map_err(wire)?;
            println!("removed");
        }
        "create" => {
            let spec = irs::WireCollectionSpec {
                name: opts.req("name")?.to_string(),
                kind: match opts.get("kind") {
                    None | Some("auto") => None,
                    Some(k) => Some(k.to_string()),
                },
                update_rate: opts.num_or("update-rate", 0.0)?,
                expected_extent: opts.num_or("extent", 0.001)?,
                weighted: opts.get("weighted").is_some(),
                shards: opts.num_or("shards", 1)?,
                seed: opts.num_or("seed", 42)?,
            };
            let s = remote.create_collection(spec).map_err(wire)?;
            println!(
                "created {} — kind {}{}, {} shard(s)",
                s.name,
                s.kind,
                if s.auto { " (planner-chosen)" } else { "" },
                s.shards,
            );
        }
        "drop" => {
            let name = opts.req("name")?;
            remote.drop_collection(name).map_err(wire)?;
            println!("dropped {name}");
        }
        "ls" => {
            let list = remote.list_collections().map_err(wire)?;
            if list.is_empty() {
                println!("(no collections)");
            } else {
                println!(
                    "{:<20} {:>14} {:>7} {:>10} {:>9} {:>12} {:>5}",
                    "name", "kind", "shards", "len", "weighted", "heap-bytes", "auto"
                );
                for s in list {
                    println!(
                        "{:<20} {:>14} {:>7} {:>10} {:>9} {:>12} {:>5}",
                        s.name, s.kind, s.shards, s.len, s.weighted, s.heap_bytes, s.auto
                    );
                }
            }
        }
        "reindex" => {
            let name = opts.req("name")?;
            let kind = opts.req("kind")?;
            let s = remote.reindex(name, kind).map_err(wire)?;
            println!(
                "reindexed {} — now kind {} ({} intervals)",
                s.name, s.kind, s.len
            );
        }
        "save-catalog" => {
            let dir = opts.req("out")?;
            remote.save_catalog(dir).map_err(wire)?;
            println!("catalog saved (server-side) to {dir}");
        }
        "load-catalog" => {
            let dir = opts.req("dir")?;
            remote.load_catalog(dir).map_err(wire)?;
            println!("server now serves catalog {dir}");
        }
        "save" => {
            let dir = opts.req("out")?;
            remote.save(dir).map_err(wire)?;
            println!("saved (server-side) to {dir}");
        }
        "inspect" => {
            let s = remote.inspect_snapshot(opts.req("dir")?).map_err(wire)?;
            println!("format-version: {}", s.format_version);
            println!("kind:           {}", s.kind);
            println!("endpoint:       {}", s.endpoint);
            println!("weighted:       {}", s.weighted);
            println!("shards:         {}", s.shards);
            println!("seed:           {}", s.seed);
            println!("live intervals: {}", s.len);
        }
        "load" => {
            let dir = opts.req("dir")?;
            remote.load(dir).map_err(wire)?;
            println!("server now serves snapshot {dir}");
        }
        "replication-status" => {
            let s = remote.replication_status().map_err(wire)?;
            println!("role:          {}", s.role);
            println!("last-seq:      {}", s.last_seq);
            println!("log-start-seq: {}", s.log_start_seq);
            if let Some(p) = &s.primary {
                println!("primary:       {p}");
            }
        }
        "promote" => {
            let s = remote.promote().map_err(wire)?;
            println!("promoted; now {} at seq {}", s.role, s.last_seq);
        }
        "shutdown" => {
            remote.shutdown().map_err(wire)?;
            println!("shutdown acknowledged; server is draining");
        }
        other => Err(format!("unknown remote action `{other}`"))?,
    }
    Ok(())
}
