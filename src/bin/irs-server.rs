//! `irs-server` — the standalone network daemon.
//!
//! ```text
//! irs-server --data trips.csv --addr 0.0.0.0:7878 --kind ait --shards 4
//! irs-server --snapshot snap/ --addr 127.0.0.1:7878
//! ```
//!
//! Builds a backend from a CSV interval file (or loads a snapshot
//! directory, skipping index construction) and serves it over the
//! `irs-wire` protocol until a remote `shutdown` request arrives, then
//! drains gracefully: in-flight batches finish and flush before the
//! process exits. Talk to it with `irs-cli remote <addr> <action>`,
//! `irs::RemoteClient`, or any client speaking the protocol in
//! DESIGN.md, "Wire protocol".

use irs::cli::Opts;
use irs::prelude::*;
use std::process::ExitCode;

const USAGE: &str = "\
irs-server — serve an interval backend over TCP (irs-wire protocol)

USAGE:
  irs-server --data <FILE>    [--addr <HOST:PORT>] [--kind <K>] [--shards <N>]
                              [--weighted] [--seed <S>]
  irs-server --snapshot <DIR> [--addr <HOST:PORT>]

Defaults: --addr 127.0.0.1:7878 (port 0 = OS-assigned), --kind ait,
--shards 1, --seed 42. Data files: CSV lines `lo,hi[,weight]`.

The server runs until a wire `shutdown` request arrives
(`irs-cli remote <addr> shutdown`), then drains: it stops accepting,
finishes every in-flight request, and exits without losing an acked
mutation.";

fn run(opts: &Opts) -> Result<(), String> {
    let addr = opts.get("addr").unwrap_or("127.0.0.1:7878");
    let client: Client<i64> = match (opts.get("snapshot"), opts.get("data")) {
        (Some(dir), None) => Client::load(dir).map_err(|e| e.to_string())?,
        (None, Some(path)) => {
            let (data, weights) = irs::datagen::load_csv(path)?;
            let kind = match opts.get("kind") {
                None => IndexKind::Ait,
                Some(name) => {
                    IndexKind::parse(name).ok_or_else(|| format!("unknown kind `{name}`"))?
                }
            };
            let mut builder = Irs::builder()
                .kind(kind)
                .shards(opts.num_or("shards", 1)?)
                .seed(opts.num_or("seed", 42)?);
            if opts.get("weighted").is_some() {
                builder = builder.weights(weights);
            }
            builder.build(&data).map_err(|e| e.to_string())?
        }
        _ => return Err("need exactly one of --data <FILE> or --snapshot <DIR>".to_string()),
    };
    let stats = client.stats();
    let handle = irs::serve(client, addr).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "irs-server listening on {} — {} × {} shard(s), {} intervals{}",
        handle.local_addr(),
        stats.kind,
        stats.shards,
        stats.len,
        if stats.weighted { ", weighted" } else { "" },
    );
    handle.join();
    println!("drained; bye");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        Some("help" | "--help" | "-h")
    ) {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match Opts::parse(&args).and_then(|opts| run(&opts)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
