//! Option parsing shared by the repo's binaries (`irs-cli`,
//! `irs-server`): a flat `--key value` bag with typed accessors. No
//! external dependencies — parsing is by hand, and unknown options are
//! simply never read (each command documents what it consumes).

/// Flat `--key value` option bag. Boolean flags (`--weighted`) take no
/// value; everything else does.
pub struct Opts(Vec<(String, String)>);

/// Option names that are flags (present/absent, no value).
const FLAGS: &[&str] = &["weighted"];

impl Opts {
    /// Parses `--key value` pairs (and bare flags) from `args`.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got `{a}`"))?;
            if FLAGS.contains(&key) {
                pairs.push((key.to_string(), "true".to_string()));
                continue;
            }
            let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            pairs.push((key.to_string(), val.clone()));
        }
        Ok(Opts(pairs))
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a required `--key`.
    pub fn req(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// A required numeric option.
    pub fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.req(key)?
            .parse()
            .map_err(|_| format!("--{key}: not a number"))
    }

    /// An optional numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not a number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Opts, String> {
        Opts::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn pairs_and_flags_parse() {
        let o = opts(&["--n", "100", "--weighted", "--out", "x.csv"]).unwrap();
        assert_eq!(o.num::<usize>("n").unwrap(), 100);
        assert!(o.get("weighted").is_some());
        assert_eq!(o.req("out").unwrap(), "x.csv");
        assert!(o.get("missing").is_none());
        assert_eq!(o.num_or::<u64>("seed", 42).unwrap(), 42);
    }

    #[test]
    fn malformed_options_are_errors() {
        assert!(opts(&["bare"]).is_err());
        assert!(opts(&["--n"]).is_err());
        let o = opts(&["--n", "ten"]).unwrap();
        assert!(o.num::<usize>("n").is_err());
        assert!(o.req("out").is_err());
    }
}
