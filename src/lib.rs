//! # irs — Independent Range Sampling on Interval Data
//!
//! A reproduction of *"Independent Range Sampling on Interval Data"*
//! (Amagata, ICDE 2024). Given a set `X` of `n` intervals, a query
//! interval `q`, and a sample size `s`, independent range sampling (IRS)
//! returns `s` random intervals from `q ∩ X` — uniformly (Problem 1) or
//! proportionally to weights (Problem 2) — with samples independent across
//! queries, in time `Õ(s)` rather than `Ω(|q ∩ X|)`.
//!
//! ## The algorithms
//!
//! | Index | Time | Space | Weighted |
//! |---|---|---|---|
//! | [`IntervalTree`] (baseline) | `Ω(\|q ∩ X\|)` | `O(n)` | ✓ |
//! | [`HintM`] (baseline) | `Ω(\|q ∩ X\|)` | `O(n)` | ✓ |
//! | [`Kds`] (baseline) | `O(√n + s)` expected | `O(n)` | ✓ |
//! | [`Ait`] | `O(log² n + s)` | `O(n log n)` | |
//! | [`AitV`] | `O(log² n + s)` expected | `O(n)` | |
//! | [`Awit`] | `O(log² n + s log n)` | `O(n log n)` | ✓ |
//!
//! ## Quickstart
//!
//! ```
//! use irs::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 100k synthetic taxi-trip-like intervals.
//! let data = irs::datagen::TAXI.generate(100_000, 42);
//! let ait = Ait::new(&data);
//!
//! // Sample 10 trips active in a time window, in O(log²n + s).
//! let q = Interval::new(10_000_000, 11_000_000);
//! let mut rng = StdRng::seed_from_u64(7);
//! let sample_ids = ait.sample(q, 10, &mut rng);
//! assert_eq!(sample_ids.len(), 10);
//! for id in sample_ids {
//!     assert!(data[id as usize].overlaps(&q));
//! }
//!
//! // Exact result-set size without enumerating it (Corollary 1).
//! let hits = ait.range_count(q);
//! assert!(hits > 0);
//! ```
//!
//! ## Scaling out
//!
//! [`Engine`] (crate `irs-engine`) shards a dataset across a
//! worker-per-shard thread pool and executes batches of typed requests
//! ([`Request::Sample`], [`Request::Count`], …) over any of the six
//! structures, keeping sampling distribution-identical to a single
//! monolithic index via multinomial cross-shard allocation.
//!
//! See the crate-level docs of [`irs_ait`], [`irs_hint`], [`irs_kds`], and
//! [`irs_interval_tree`] for per-structure details, and `DESIGN.md` /
//! `README.md` in the repository for the architecture and reproduction
//! methodology.

pub use irs_ait::{Ait, AitV, Awit, DynamicAwit, ListKind, NodeRecord, RejectionStats};
pub use irs_core::{
    domain_bounds, pair_sort_indices, BruteForce, Endpoint, GridEndpoint, Interval, Interval64,
    ItemId, MemoryFootprint, PreparedSampler, RangeCount, RangeSampler, RangeSearch, StabbingQuery,
    WeightedRangeSampler,
};
pub use irs_engine::{Engine, EngineConfig, IndexKind, Request, Response};
pub use irs_hint::HintM;
pub use irs_interval_tree::IntervalTree;
pub use irs_kds::Kds;
pub use irs_period_index::PeriodIndex;
pub use irs_segment_tree::SegmentTree;
pub use irs_timeline::TimelineIndex;

/// Engine throughput-measurement helpers (re-export of
/// [`irs_engine::throughput`]), shared by `irs-cli bench-engine` and the
/// bench binaries.
pub mod engine_throughput {
    pub use irs_engine::throughput::*;
}

/// Dataset and workload generation (re-export of [`irs_datagen`]).
pub mod datagen {
    pub use irs_datagen::*;
}

/// Sampling primitives (re-export of [`irs_sampling`]).
pub mod sampling {
    pub use irs_sampling::*;
}

/// One-stop imports for applications.
pub mod prelude {
    pub use irs_ait::{Ait, AitV, Awit, DynamicAwit};
    pub use irs_core::{
        Interval, Interval64, ItemId, MemoryFootprint, PreparedSampler, RangeCount, RangeSampler,
        RangeSearch, StabbingQuery, WeightedRangeSampler,
    };
    pub use irs_engine::{Engine, EngineConfig, IndexKind, Request, Response};
    pub use irs_hint::HintM;
    pub use irs_interval_tree::IntervalTree;
    pub use irs_kds::Kds;
    pub use irs_period_index::PeriodIndex;
    pub use irs_segment_tree::SegmentTree;
    pub use irs_timeline::TimelineIndex;
}
