//! # irs — Independent Range Sampling on Interval Data
//!
//! A reproduction of *"Independent Range Sampling on Interval Data"*
//! (Amagata, ICDE 2024). Given a set `X` of `n` intervals, a query
//! interval `q`, and a sample size `s`, independent range sampling (IRS)
//! returns `s` random intervals from `q ∩ X` — uniformly (Problem 1) or
//! proportionally to weights (Problem 2) — with samples independent across
//! queries, in time `Õ(s)` rather than `Ω(|q ∩ X|)`.
//!
//! ## The algorithms
//!
//! | Index | Time | Space | Weighted |
//! |---|---|---|---|
//! | [`IntervalTree`] (baseline) | `Ω(\|q ∩ X\|)` | `O(n)` | ✓ |
//! | [`HintM`] (baseline) | `Ω(\|q ∩ X\|)` | `O(n)` | ✓ |
//! | [`Kds`] (baseline) | `O(√n + s)` expected | `O(n)` | ✓ |
//! | [`Ait`] | `O(log² n + s)` | `O(n log n)` | |
//! | [`AitV`] | `O(log² n + s)` expected | `O(n)` | |
//! | [`Awit`] | `O(log² n + s log n)` | `O(n log n)` | ✓ |
//!
//! ## Quickstart
//!
//! The unified facade ([`Irs`], crate `irs-client`) serves every
//! structure — and the sharded engine — behind one typed, fallible API:
//!
//! ```
//! use irs::prelude::*;
//!
//! // 100k synthetic taxi-trip-like intervals.
//! let data = irs::datagen::TAXI.generate(100_000, 42);
//! let client = Irs::builder().kind(IndexKind::Ait).seed(7).build(&data)?;
//!
//! // Sample 10 trips active in a time window, in O(log²n + s).
//! let q = Interval::new(10_000_000, 11_000_000);
//! let sample_ids = client.sample(q, 10)?;
//! assert_eq!(sample_ids.len(), 10);
//! for id in sample_ids {
//!     assert!(data[id as usize].overlaps(&q));
//! }
//!
//! // Exact result-set size without enumerating it (Corollary 1).
//! assert!(client.count(q)? > 0);
//!
//! // Capability discovery instead of probe-and-catch:
//! assert!(!client.capabilities().weighted_sample); // built without weights
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Failures are typed ([`QueryError`], [`BuildError`], [`UpdateError`]),
//! never panics or string sentinels; an empty result set is `Ok`, not an
//! error. The single-structure APIs ([`Ait::new`] + [`RangeSampler`]
//! etc.) remain available for direct, RNG-in-hand use.
//!
//! ## Live updates
//!
//! Update-capable kinds ([`IndexKind::Ait`] — the paper's §III-D
//! algorithms — and [`IndexKind::AwitDynamic`] for weighted data) ingest
//! while they serve, through the same facade:
//!
//! ```
//! use irs::prelude::*;
//!
//! let data = irs::datagen::TAXI.generate(10_000, 42);
//! let mut client = Irs::builder().kind(IndexKind::Ait).shards(4).build(&data)?;
//! let id = client.insert(Interval::new(500, 900))?;        // immediately sampleable
//! let batch = client.extend_batch(&data[..100])?;          // pooled batch insertion
//! client.remove(id)?;                                      // id never reappears
//! assert_eq!(client.len(), data.len() + 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Scaling out
//!
//! `Irs::builder().shards(k)` (for `k > 1`) puts the same facade over
//! [`Engine`] (crate `irs-engine`): the dataset shards `K` ways, and
//! batches of typed [`Query`]s execute on the calling thread over the
//! shared shard state, with sampling kept distribution-identical to a
//! single monolithic index via multinomial cross-shard allocation.
//! Both [`Client`] and [`Engine`] are cheap clonable handles
//! (`Clone + Send + Sync`), so many threads share one backend and
//! query it concurrently; mutations funnel through a single writer
//! seat ([`Client::writer`]).
//!
//! See the crate-level docs of [`irs_client`], [`irs_ait`], [`irs_hint`],
//! [`irs_kds`], and [`irs_interval_tree`] for details, and `DESIGN.md` /
//! `README.md` in the repository for the architecture and reproduction
//! methodology.

#![deny(missing_docs)]

pub use irs_ait::{Ait, AitV, Awit, DynamicAwit, ListKind, NodeRecord, RejectionStats};
pub use irs_catalog::{
    Catalog, CollectionInfo, CollectionSpec, KindSpec, WorkloadHints, DEFAULT_COLLECTION,
};
pub use irs_client::{Client, ClientWriter, Irs, IrsBuilder, SampleStream};
pub use irs_core::wal::{
    read_checkpoint, read_log, write_checkpoint, LogRecord, ReplicationError, WalReplay, WalTailer,
    WalWriter,
};
pub use irs_core::{
    domain_bounds, pair_sort_indices, validate_collection_name, validate_update_weight,
    validate_weights, BruteForce, BuildError, Capabilities, CatalogError, Codec, Endpoint,
    GridEndpoint, Interval, Interval64, ItemId, MemoryFootprint, Mutation, Operation, PersistError,
    PreparedSampler, QueryError, RangeCount, RangeSampler, RangeSearch, StabbingQuery, UpdateError,
    UpdateOp, UpdateOutput, WeightedRangeSampler,
};
pub use irs_engine::{
    inspect_snapshot, DynIndex, Engine, EngineConfig, IndexKind, Manifest, Query, QueryOutput,
    SnapshotInfo,
};
pub use irs_hint::HintM;
pub use irs_interval_tree::IntervalTree;
pub use irs_kds::Kds;
pub use irs_period_index::PeriodIndex;
pub use irs_segment_tree::SegmentTree;
pub use irs_server::{
    serve, serve_catalog, serve_catalog_with, serve_primary, serve_primary_catalog,
    serve_primary_catalog_with, serve_primary_with, serve_replica, serve_replica_with, serve_with,
    ServerConfig, ServerHandle,
};
pub use irs_timeline::TimelineIndex;
pub use irs_wire::{
    CollectionSummary, ErrorCode, LogRecordFrame, LogStream, RemoteClient, ReplicationStatus,
    ServerStats, SnapshotChunk, SnapshotSummary, WireCollectionSpec, WireError,
};

/// The multi-tenant catalog (re-export of [`irs_catalog`]): named
/// collections, memory budget, the adaptive kind [`catalog::planner`],
/// and online re-indexing.
pub mod catalog {
    pub use irs_catalog::*;
}

/// CLI plumbing shared by the repo's binaries.
pub mod cli;

/// The wire protocol (re-export of [`irs_wire`]): framing, the typed
/// request/response vocabulary, and the blocking [`RemoteClient`].
pub mod wire {
    pub use irs_wire::*;
}

/// Engine throughput-measurement helpers (re-export of
/// [`irs_engine::throughput`]), shared by `irs-cli bench-engine` and the
/// bench binaries.
pub mod engine_throughput {
    pub use irs_engine::throughput::*;
}

/// Dataset and workload generation (re-export of [`irs_datagen`]).
pub mod datagen {
    pub use irs_datagen::*;
}

/// Sampling primitives (re-export of [`irs_sampling`]).
pub mod sampling {
    pub use irs_sampling::*;
}

/// One-stop imports for applications.
pub mod prelude {
    pub use irs_ait::{Ait, AitV, Awit, DynamicAwit};
    pub use irs_catalog::{Catalog, CollectionSpec, KindSpec, WorkloadHints};
    pub use irs_client::{Client, ClientWriter, Irs, IrsBuilder, SampleStream};
    pub use irs_core::{
        BuildError, Capabilities, CatalogError, Interval, Interval64, ItemId, MemoryFootprint,
        Mutation, Operation, PersistError, PreparedSampler, QueryError, RangeCount, RangeSampler,
        RangeSearch, StabbingQuery, UpdateError, UpdateOp, UpdateOutput, WeightedRangeSampler,
    };
    pub use irs_engine::{Engine, EngineConfig, IndexKind, Query, QueryOutput};
    pub use irs_hint::HintM;
    pub use irs_interval_tree::IntervalTree;
    pub use irs_kds::Kds;
    pub use irs_period_index::PeriodIndex;
    pub use irs_segment_tree::SegmentTree;
    pub use irs_server::{serve, serve_catalog, ServerHandle};
    pub use irs_timeline::TimelineIndex;
    pub use irs_wire::{ErrorCode, RemoteClient, WireError};
}
